// Corpus: the aggregated observation store behind every dataset in the
// study (the NTP corpus, the simulated IPv6 Hitlist, the CAIDA campaign).
//
// Billions-of-addresses scale (paper) maps to millions here, so the store
// is a cache-friendly dense table: records live contiguously in insertion
// order in `records_`, and an open-addressing index of u32 record ids
// (linear probing, power-of-two capacity, load factor <= ~0.66) maps
// addresses to them. Per address it keeps exactly what the analyses need —
// first/last sighting, observation count, vantage bitmask — so collection
// is O(1) memory per *unique address*, not per observation.
//
// The dense layout is what the out-of-core engine (tiered_corpus.h) builds
// on: after canonicalize() the record array IS the ascending-address
// stream, so an in-memory scan and a k-way merge over spilled runs visit
// records in the identical order — the bit-identity contract.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "util/sim_time.h"

namespace v6::hitlist {

struct AddressRecord {
  net::Ipv6Address address;
  std::uint32_t first_seen = 0;  // seconds since study epoch
  std::uint32_t last_seen = 0;
  std::uint32_t count = 0;
  // Bit v set: seen at vantage v, for v < 31. Bit 31 is the overflow
  // bucket: a sighting from any vantage >= 31 sets it, so no observation
  // is ever silently dropped from the mask (the study runs 27 vantages;
  // the bucket only matters for configs beyond the mask's width).
  std::uint32_t vantage_mask = 0;

  util::SimDuration lifetime() const noexcept {
    return static_cast<util::SimDuration>(last_seen) - first_seen;
  }
};

class Corpus {
 public:
  explicit Corpus(std::size_t expected_addresses = 1 << 16);

  // A moved-from Corpus is empty but fully usable: find() answers
  // nullptr and the next add() lazily re-creates a minimal table (the
  // default-move alternative left an empty index vector that find()/add()
  // would index into — UB).
  Corpus(Corpus&& other) noexcept;
  Corpus& operator=(Corpus&& other) noexcept;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  // Records one sighting. `t` is clamped into u32 seconds: negative times
  // clamp to 0 and times past 2^32-1 saturate at UINT32_MAX (truncating
  // instead would wrap first_seen/last_seen and manufacture negative
  // lifetimes). `vantage` sets bit min(vantage, 31) of the record's
  // vantage_mask — out-of-range vantages land in the bit-31 overflow
  // bucket rather than being dropped.
  void add(const net::Ipv6Address& address, util::SimTime t,
           std::uint8_t vantage = 0);

  // Merges every record of `other` into *this.
  void merge(const Corpus& other);

  // Merges one pre-aggregated record (same semantics as merge()).
  void add_record(const AddressRecord& record);

  // Merges a contiguous block of pre-aggregated records (same semantics
  // as add_record over each, in order). The hot path for block handoff:
  // addresses are hashed through the batch kernel
  // (kernels::ipv6_hash_batch) a block at a time instead of one indirect
  // hash call per record. Backend-independent: both kernel backends are
  // bit-identical, so probe sequences — and therefore the table layout —
  // never depend on the dispatch choice.
  void add_block(std::span<const AddressRecord> block);

  const AddressRecord* find(const net::Ipv6Address& address) const noexcept;

  // Re-sorts the record array into ascending address order (and rebuilds
  // the index). Records land in records() in first-insertion order, so
  // the raw layout — and with it for_each() order and save_corpus()
  // bytes — depends on the order sightings arrived. Canonicalizing makes
  // the layout a pure function of the stored content; collection calls
  // this at its final merge barrier so chunk grids (checkpoints, timeline
  // sampling) and shard counts change no output byte. It also aligns the
  // in-memory visit order with the ascending-address stream a k-way merge
  // over spilled runs produces.
  void canonicalize();

  std::size_t size() const noexcept { return records_.size(); }
  std::uint64_t total_observations() const noexcept { return observations_; }

  // The dense record array, in insertion order (ascending address order
  // after canonicalize()). Pointers/spans are invalidated by any mutation.
  std::span<const AddressRecord> records() const noexcept {
    return records_;
  }

  // Heap footprint of the table (records + index), the quantity the
  // collector's spill budget meters.
  std::size_t memory_bytes() const noexcept {
    return records_.capacity() * sizeof(AddressRecord) +
           index_.capacity() * sizeof(std::uint32_t);
  }

  // Hands the whole record array to `fn` as one contiguous block, in
  // insertion order (ascending address order after canonicalize()). The
  // block form of for_each(): callers feed the span straight into the
  // batch kernels.
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    fn(std::span<const AddressRecord>(records_));
  }

  // deprecated: block API — iterate via for_each_block() and the batch
  // kernels instead; kept so out-of-tree per-record callers compile.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& rec : records_) fn(rec);
  }

  // Sharded iteration domain for analysis::ParallelScan: the number of
  // stored records. Partitioning [0, slot_span()) into contiguous ranges
  // and concatenating for_each_block_in_slot_range() over them in
  // ascending order visits records in exactly for_each() order — the
  // invariant the parallel analyses' determinism rests on.
  std::size_t slot_span() const noexcept { return records_.size(); }

  // Hands the records stored at positions [begin, end) to `fn` as one
  // contiguous block (the array is dense, so a sub-range IS a block).
  // `end` is clamped to slot_span().
  template <typename Fn>
  void for_each_block_in_slot_range(std::size_t begin, std::size_t end,
                                    Fn&& fn) const {
    end = std::min(end, records_.size());
    if (begin >= end) return;
    fn(std::span<const AddressRecord>(records_.data() + begin, end - begin));
  }

  // deprecated: block API — use for_each_block_in_slot_range(); kept so
  // out-of-tree per-record callers compile.
  template <typename Fn>
  void for_each_in_slot_range(std::size_t begin, std::size_t end,
                              Fn&& fn) const {
    end = std::min(end, records_.size());
    for (std::size_t i = begin; i < end; ++i) fn(records_[i]);
  }

  // Smallest power-of-two index capacity keeping `expected` records at or
  // below ~0.66 load. Public because the overflow regression test drives
  // it with paper-scale (near SIZE_MAX) inputs: the naive
  // `cap * 2 < expected * 3` form wrapped and looped forever.
  static std::size_t index_capacity_for(std::size_t expected) noexcept;

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  // Index slot holding `address`'s record id, or the empty slot where it
  // would go. The two-argument form takes the precomputed address hash
  // (the batch-insert path hashes whole blocks up front).
  std::uint32_t* lookup_slot(const net::Ipv6Address& address) noexcept;
  std::uint32_t* lookup_slot(const net::Ipv6Address& address,
                             std::uint64_t hash) noexcept;
  // add_record with the hash already in hand (does NOT bump
  // observations_; callers account for it).
  void merge_record_hashed(const AddressRecord& record, std::uint64_t hash);
  void grow_index();
  void rebuild_index(std::size_t capacity);
  // Re-creates a minimal table after a move emptied this corpus.
  void revive_if_moved_from();

  std::vector<AddressRecord> records_;
  std::vector<std::uint32_t> index_;
  std::size_t index_mask_ = 0;
  std::uint64_t observations_ = 0;
};

}  // namespace v6::hitlist
