// The two comparison datasets of Table 1, produced by *running the actual
// methodologies* against the same simulated world as the NTP collection:
//
//   * HitlistCampaign — an IPv6-Hitlist-style weekly campaign: seed from
//     public sources (DNS-published servers, rDNS-published CPE/routers),
//     ZMap6-scan the frontier, Yarrp-trace a sample, expand with
//     target-generation around discovered structure, and filter aliased
//     prefixes with the Gasser detector.
//   * CaidaCampaign — CAIDA's routed-/48 topology sweep: split every
//     announced /32 into /48s and Yarrp-trace the ::1 of each (subsampled
//     to scale, as the paper's 1.08B traces scale to our world).
//
// Because both run against ground truth, the Table 1 comparisons (overlap,
// ASes, density) are emergent rather than baked in.
#pragma once

#include <cstdint>
#include <vector>

#include "hitlist/alias_detection.h"
#include "hitlist/corpus.h"
#include "net/prefix.h"
#include "netsim/data_plane.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::hitlist {

struct HitlistCampaignConfig {
  // Feb 16 .. Aug 29 relative to the study epoch (Jan 25).
  util::SimTime start = 22 * util::kDay;
  util::SimDuration duration = 194 * util::kDay;
  util::SimDuration snapshot_interval = util::kWeek;
  // TGA expansion rounds per snapshot.
  std::uint32_t tga_iterations = 2;
  // Frontier cap per snapshot (probe budget).
  std::size_t max_frontier = 150000;
  // Fraction of frontier targets additionally traced with Yarrp.
  double trace_fraction = 0.12;
  std::uint8_t yarrp_max_hops = 12;
  // Fraction of CPEs whose current address is exposed via reverse DNS.
  double rdns_cpe_fraction = 0.08;
  // Fraction of client devices whose current address leaks through
  // crowdsourced panels / CDN logs / CT-style public sources per snapshot
  // (the Hitlist ingests such feeds; Gasser et al. even ran MTurk).
  double crowdsourced_client_fraction = 0.005;
  // BGP-informed candidates: a light routed-/48 ::1 sample folded into the
  // first snapshot's frontier (the real Hitlist also consumes BGP data).
  double routed_seed_fraction = 0.001;
  std::uint64_t seed = 17;
  // Optional metrics sink (not owned), forwarded to every scanner the
  // campaign constructs. Appended last so positional initializers stay
  // valid.
  obs::Registry* metrics = nullptr;
  // Optional timeline sampler (not owned): closes one window per weekly
  // snapshot, at the snapshot's end. The campaign is single-threaded, so
  // every instant is a merge barrier; snapshot ends are the natural grid.
  // (The campaign's sim window re-covers the collection window the
  // pipeline already passed, so these windows clamp to zero width — the
  // per-snapshot deltas are the payload.)
  obs::TimelineSampler* sampler = nullptr;
};

struct HitlistResult {
  Corpus corpus;  // responsive, alias-filtered addresses (cumulative)
  std::vector<net::Ipv6Prefix> aliased_prefixes;  // detected aliased /48+/64
  std::uint64_t probes_sent = 0;
  std::uint32_t snapshots = 0;
};

HitlistResult run_hitlist_campaign(const sim::World& world,
                                   netsim::DataPlane& plane,
                                   const HitlistCampaignConfig& config);

struct CaidaCampaignConfig {
  // Feb 3 .. Apr 6 relative to the study epoch.
  util::SimTime start = 9 * util::kDay;
  util::SimDuration duration = 62 * util::kDay;
  // Deterministic subsample of each /32's 65536 constituent /48s.
  double slash48_fraction = 0.02;
  std::uint8_t max_hops = 12;
  std::uint64_t seed = 19;
  // Optional metrics sink (not owned), forwarded to the per-day tracers.
  obs::Registry* metrics = nullptr;
};

struct CaidaResult {
  Corpus corpus;  // every responding interface (hops + reached ::1s)
  std::uint64_t traces = 0;
  std::uint64_t probes_sent = 0;
};

CaidaResult run_caida_campaign(const sim::World& world,
                               netsim::DataPlane& plane,
                               const CaidaCampaignConfig& config);

}  // namespace v6::hitlist
