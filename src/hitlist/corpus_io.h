// Corpus serialization: a compact, versioned binary snapshot so studies
// can be collected once and analyzed many times (or shipped between
// machines). Format:
//
//   magic "V6CORP01"            8 bytes
//   record count                u64 LE-free (big-endian like the wire)
//   total observations          u64
//   records: address(16) first_seen(4) last_seen(4) count(4) vantages(4)
//
// Everything goes through proto::BufferWriter/Reader, so byte order and
// truncation handling match the rest of the codebase.
#pragma once

#include <iosfwd>

#include "hitlist/corpus.h"

namespace v6::hitlist {

// Writes a snapshot; returns bytes written.
std::size_t save_corpus(std::ostream& out, const Corpus& corpus);

// Loads a snapshot. Throws std::runtime_error on bad magic, truncation,
// or trailing garbage.
Corpus load_corpus(std::istream& in);

}  // namespace v6::hitlist
