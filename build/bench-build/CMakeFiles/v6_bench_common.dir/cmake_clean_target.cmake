file(REMOVE_RECURSE
  "libv6_bench_common.a"
)
