file(REMOVE_RECURSE
  "CMakeFiles/v6_hitlist.dir/alias_detection.cc.o"
  "CMakeFiles/v6_hitlist.dir/alias_detection.cc.o.d"
  "CMakeFiles/v6_hitlist.dir/campaigns.cc.o"
  "CMakeFiles/v6_hitlist.dir/campaigns.cc.o.d"
  "CMakeFiles/v6_hitlist.dir/corpus.cc.o"
  "CMakeFiles/v6_hitlist.dir/corpus.cc.o.d"
  "CMakeFiles/v6_hitlist.dir/corpus_io.cc.o"
  "CMakeFiles/v6_hitlist.dir/corpus_io.cc.o.d"
  "CMakeFiles/v6_hitlist.dir/passive_collector.cc.o"
  "CMakeFiles/v6_hitlist.dir/passive_collector.cc.o.d"
  "CMakeFiles/v6_hitlist.dir/release.cc.o"
  "CMakeFiles/v6_hitlist.dir/release.cc.o.d"
  "libv6_hitlist.a"
  "libv6_hitlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_hitlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
