// Cluster-wide observability: folding per-worker registry snapshots and
// timelines into one cluster view, plus the percentile estimator and the
// run-report linter the `obs-report` artifact leans on.
//
// The aggregator is transport-agnostic plain data — dist::SimCluster and
// the real coordinator decode V6DIST01 kObsReport frames and feed the
// contents in here; nothing in src/obs knows about frames.
//
// Merge semantics:
//   * counters    — summed across workers under their ORIGINAL labels.
//                   The deterministic collector families (polls, answered,
//                   per-vantage health) are each recorded by exactly one
//                   subset, so the cluster sum is bit-identical to the
//                   single-process run's counters at any worker count
//                   under any fault plan — the identity the dist tests
//                   pin down.
//   * gauges      — kept per-worker with a `worker` label appended (a
//                   gauge is a point-in-time fact about one process;
//                   summing two workers' backlog gauges would invent a
//                   number nobody observed).
//   * histograms  — merged bucket-wise when the bucket bounds agree
//                   (counts, count and sum all add); bound mismatches
//                   fall back to per-worker samples under a `worker`
//                   label, like gauges.
//   * timelines   — interleaved into one cluster timeline sorted by
//                   (window begin, window end, worker), and rendered as a
//                   multi-lane Chrome trace with one Perfetto pid lane
//                   per worker report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.h"
#include "obs/timeline.h"

namespace v6::obs {

// One worker's uploaded observability state for one completed lease.
struct WorkerReport {
  std::uint32_t worker = 0;
  std::uint32_t subset = 0;
  Snapshot snapshot;
  Timeline timeline;
};

// One window of the merged cluster timeline, tagged with the worker that
// recorded it. The merged sequence is NOT gapless (workers overlap), so
// it is rendered with an explicit "worker" field rather than pretending
// to be a single-process timeline.
struct ClusterWindow {
  std::uint32_t worker = 0;
  WindowRecord window;
};

// p50/p90/p99 estimated from histogram bucket bounds, Prometheus
// histogram_quantile-style: linear interpolation inside the bucket the
// rank lands in; a rank landing in the +Inf bucket clamps to the last
// finite bound. Percentiles are nullopt when the histogram is empty.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::optional<double> p50;
  std::optional<double> p90;
  std::optional<double> p99;
};

HistogramSummary summarize_histogram(const HistogramData& histogram);

class ClusterAggregator {
 public:
  // Folds one worker's report in. A report for an already-seen subset
  // replaces the previous one (lease reassignment: only the completing
  // lease's state counts — keeping both would double-count the subset).
  void add_worker(std::uint32_t worker, std::uint32_t subset,
                  Snapshot snapshot, Timeline timeline);

  bool empty() const noexcept { return reports_.empty(); }
  std::size_t report_count() const noexcept { return reports_.size(); }
  // Reports sorted by (worker, subset).
  const std::vector<WorkerReport>& reports() const noexcept {
    return reports_;
  }

  // The merged cluster registry view, sorted by (name, labels) exactly
  // like Registry::snapshot() so exposition output is deterministic.
  Snapshot cluster_snapshot() const;

  // Every worker window interleaved, sorted by (begin, end, worker).
  std::vector<ClusterWindow> cluster_timeline() const;

  // JSONL rendering of cluster_timeline(): the single-process window
  // shape plus a leading "worker" field per line. Every line passes
  // lint_json; the gapless single-timeline check deliberately does not
  // apply.
  std::string render_cluster_timeline() const;

  // Multi-lane Chrome trace: one pid lane per report (named
  // "worker W subset S"), loadable in Perfetto side by side and clean
  // under lint_trace_events.
  std::string render_trace() const;

 private:
  std::vector<WorkerReport> reports_;  // sorted by (worker, subset)
};

// Dependency-free validator for the `v6pool_cli obs-report` artifact:
// the text must be one valid JSON object (lint_json) declaring
// "report":"v6pool_run_report", carrying the required top-level sections
// (version, config with digest, kernel_backend, metrics, serve_latency,
// epochs, timeline), and every p50_us/p90_us/p99_us value must be a JSON
// number or null. Returns nullopt when clean, else a description.
std::optional<std::string> lint_report(std::string_view text);

}  // namespace v6::obs
