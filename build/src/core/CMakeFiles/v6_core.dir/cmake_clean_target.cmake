file(REMOVE_RECURSE
  "libv6_core.a"
)
