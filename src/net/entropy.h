// Normalized Shannon entropy of IPv6 interface identifiers.
//
// Following the paper (and Gasser et al.'s hitlist work), entropy is
// computed over the 16 hexadecimal nibbles of the 64-bit IID and normalized
// by log2(16) = 4 bits, yielding a value in [0, 1]:
//   * IID `::` (all zero nibbles)          -> 0.0
//   * IID `0123:4567:89ab:cdef` (all 16
//     nibbles distinct)                    -> 1.0  (the paper's example)
// The paper buckets IIDs into three bands: low (< 0.25),
// medium ([0.25, 0.75)), and high (>= 0.75).
#pragma once

#include <cstdint>

#include "net/ipv6.h"

namespace v6::net {

// Normalized Shannon entropy over the 16 nibbles of `iid`, in [0, 1].
double iid_entropy(std::uint64_t iid) noexcept;

inline double iid_entropy(const Ipv6Address& a) noexcept {
  return iid_entropy(a.iid());
}

enum class EntropyBand : std::uint8_t { kLow, kMedium, kHigh };

inline constexpr double kLowEntropyCutoff = 0.25;
inline constexpr double kHighEntropyCutoff = 0.75;

constexpr EntropyBand entropy_band(double entropy) noexcept {
  if (entropy < kLowEntropyCutoff) return EntropyBand::kLow;
  if (entropy < kHighEntropyCutoff) return EntropyBand::kMedium;
  return EntropyBand::kHigh;
}

const char* to_string(EntropyBand band) noexcept;

}  // namespace v6::net
