// Corpus serialization: a compact, versioned binary snapshot so studies
// can be collected once and analyzed many times (or shipped between
// machines). Format v2 (written by save_corpus):
//
//   magic "V6CORP02"            8 bytes
//   record count                u64 LE-free (big-endian like the wire)
//   total observations          u64
//   header CRC32                u32 over the two u64 header fields
//   records: address(16) first_seen(4) last_seen(4) count(4) vantages(4)
//   records CRC32               u32 over the whole records section
//
// The per-section CRC32s (IEEE, see proto::crc32) catch bit rot in
// long-lived checkpoint files, where a flipped count would otherwise load
// as a silently wrong corpus. Format v1 ("V6CORP01", no CRCs) is still
// readable.
//
// Everything goes through proto::BufferWriter/Reader, so byte order and
// truncation handling match the rest of the codebase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "hitlist/corpus.h"

namespace v6::proto {
class BufferWriter;
}  // namespace v6::proto

namespace v6::hitlist {

// Writes a v2 snapshot; returns bytes written.
std::size_t save_corpus(std::ostream& out, const Corpus& corpus);

// Appends a v2 snapshot to an existing writer (used to embed the corpus
// inside a collection checkpoint).
void save_corpus(proto::BufferWriter& out, const Corpus& corpus);

// Loads a snapshot (v1 or v2). Throws std::runtime_error on bad magic,
// truncation, CRC mismatch, or trailing garbage.
Corpus load_corpus(std::istream& in);

// Same, from an in-memory buffer that must contain exactly one snapshot.
Corpus load_corpus(std::span<const std::uint8_t> bytes);

}  // namespace v6::hitlist
