#include "hitlist/corpus.h"

#include <gtest/gtest.h>

#include <limits>
#include <unordered_map>

#include "util/rng.h"

namespace v6::hitlist {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

TEST(Corpus, EmptyState) {
  Corpus c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.total_observations(), 0u);
  EXPECT_EQ(c.find(addr(1, 1)), nullptr);
}

TEST(Corpus, SingleAddMakesRecord) {
  Corpus c;
  c.add(addr(1, 2), 100, 3);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.total_observations(), 1u);
  const auto* rec = c.find(addr(1, 2));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->first_seen, 100u);
  EXPECT_EQ(rec->last_seen, 100u);
  EXPECT_EQ(rec->count, 1u);
  EXPECT_EQ(rec->vantage_mask, 1u << 3);
  EXPECT_EQ(rec->lifetime(), 0);
}

TEST(Corpus, RepeatSightingsAggregate) {
  Corpus c;
  c.add(addr(1, 2), 500, 0);
  c.add(addr(1, 2), 100, 1);  // earlier (out-of-order arrival)
  c.add(addr(1, 2), 900, 2);
  EXPECT_EQ(c.size(), 1u);
  const auto* rec = c.find(addr(1, 2));
  EXPECT_EQ(rec->first_seen, 100u);
  EXPECT_EQ(rec->last_seen, 900u);
  EXPECT_EQ(rec->count, 3u);
  EXPECT_EQ(rec->vantage_mask, 0b111u);
  EXPECT_EQ(rec->lifetime(), 800);
}

TEST(Corpus, NegativeTimeClampsToZero) {
  Corpus c;
  c.add(addr(1, 2), -50, 0);
  EXPECT_EQ(c.find(addr(1, 2))->first_seen, 0u);
}

TEST(Corpus, Vantage31SetsHighestBit) {
  Corpus c;
  c.add(addr(1, 2), 1, 31);
  EXPECT_EQ(c.find(addr(1, 2))->vantage_mask, 1u << 31);
}

TEST(Corpus, OutOfRangeVantageLandsInOverflowBucket) {
  // The contract: vantages past the mask's width share bit 31 instead of
  // being silently dropped (PassiveCollector forwards obs.vantage
  // unclamped).
  Corpus c;
  c.add(addr(1, 2), 1, 40);
  EXPECT_EQ(c.find(addr(1, 2))->vantage_mask, 1u << 31);
  c.add(addr(1, 2), 2, 255);
  EXPECT_EQ(c.find(addr(1, 2))->vantage_mask, 1u << 31);
  c.add(addr(1, 2), 3, 0);
  EXPECT_EQ(c.find(addr(1, 2))->vantage_mask, (1u << 31) | 1u);
}

TEST(Corpus, IndexCapacityForHugeExpectedDoesNotWrap) {
  // Regression: the load-factor check was `cap * 2 < expected * 3`, which
  // wraps for paper-scale expected (> SIZE_MAX / 3) and looped forever.
  // The division form must terminate and cap at the largest power of two.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const std::size_t expected :
       {kMax, kMax - 1, kMax / 3 * 2, kMax / 3 + 1, std::size_t{1} << 62}) {
    const std::size_t cap = Corpus::index_capacity_for(expected);
    EXPECT_NE(cap, 0u) << expected;
    EXPECT_EQ(cap & (cap - 1), 0u) << expected;  // power of two
    EXPECT_GT(cap, kMax >> 1) << expected;       // topmost power of two
  }
  // Ordinary sizes keep the ~0.66 load contract exactly: 64 holds 42
  // records (42/64 = 0.656), the 43rd forces 128.
  EXPECT_EQ(Corpus::index_capacity_for(0), 64u);
  EXPECT_EQ(Corpus::index_capacity_for(42), 64u);
  EXPECT_EQ(Corpus::index_capacity_for(43), 128u);
}

TEST(Corpus, HostileExpectedAddressesDoesNotEagerAllocate) {
  // A hostile snapshot header can claim SIZE_MAX records; the constructor
  // caps its eager reserve instead of allocating by the claim.
  Corpus c(std::numeric_limits<std::size_t>::max());
  EXPECT_LT(c.memory_bytes(), std::size_t{1} << 27);
  c.add(addr(1, 2), 5, 0);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_NE(c.find(addr(1, 2)), nullptr);
}

TEST(Corpus, AddTimestampSaturatesAtU32Max) {
  // Regression: add() used to truncate SimTime into u32, so a sighting at
  // 2^32 seconds wrapped to 0 and manufactured negative lifetimes. The
  // contract is saturation at both ends.
  constexpr util::SimTime kU32Max =
      static_cast<util::SimTime>(std::numeric_limits<std::uint32_t>::max());
  Corpus c;
  c.add(addr(1, 2), kU32Max, 0);  // the boundary itself is representable
  EXPECT_EQ(c.find(addr(1, 2))->last_seen,
            std::numeric_limits<std::uint32_t>::max());
  c.add(addr(1, 2), kU32Max + 1, 0);  // would wrap to 0 under truncation
  c.add(addr(1, 2), kU32Max + 100000, 0);
  const auto* rec = c.find(addr(1, 2));
  EXPECT_EQ(rec->first_seen, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(rec->last_seen, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(rec->lifetime(), 0);

  // Mixed with an early sighting: the lifetime stays sane instead of the
  // wrapped first_seen == 0 a truncating add produced.
  c.add(addr(1, 2), 10, 0);
  EXPECT_EQ(c.find(addr(1, 2))->first_seen, 10u);
  EXPECT_EQ(c.find(addr(1, 2))->lifetime(),
            static_cast<util::SimDuration>(
                std::numeric_limits<std::uint32_t>::max()) -
                10);
}

TEST(Corpus, GrowsPastInitialCapacity) {
  Corpus c(16);
  util::Rng rng(1);
  std::vector<net::Ipv6Address> addresses;
  for (int i = 0; i < 5000; ++i) {
    addresses.push_back(addr(rng.next(), rng.next()));
    c.add(addresses.back(), i, static_cast<std::uint8_t>(i % 27));
  }
  EXPECT_EQ(c.size(), 5000u);
  for (const auto& a : addresses) {
    EXPECT_NE(c.find(a), nullptr);
  }
}

TEST(Corpus, ForEachVisitsEveryRecordOnce) {
  Corpus c;
  for (std::uint64_t i = 0; i < 100; ++i) c.add(addr(i, i), 1, 0);
  std::size_t visits = 0;
  c.for_each([&](const AddressRecord&) { ++visits; });
  EXPECT_EQ(visits, 100u);
}

TEST(Corpus, MergeCombinesAggregates) {
  Corpus a, b;
  a.add(addr(1, 1), 100, 0);
  a.add(addr(2, 2), 200, 1);
  b.add(addr(1, 1), 50, 2);
  b.add(addr(3, 3), 300, 3);
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.total_observations(), 4u);
  const auto* rec = a.find(addr(1, 1));
  EXPECT_EQ(rec->first_seen, 50u);
  EXPECT_EQ(rec->last_seen, 100u);
  EXPECT_EQ(rec->count, 2u);
  EXPECT_EQ(rec->vantage_mask, 0b101u);
}

TEST(Corpus, AddRecordMergesLikeMerge) {
  Corpus corpus;
  corpus.add(addr(1, 1), 100, 0);
  AddressRecord rec;
  rec.address = addr(1, 1);
  rec.first_seen = 50;
  rec.last_seen = 400;
  rec.count = 3;
  rec.vantage_mask = 0b10;
  corpus.add_record(rec);
  const auto* merged = corpus.find(addr(1, 1));
  EXPECT_EQ(merged->first_seen, 50u);
  EXPECT_EQ(merged->last_seen, 400u);
  EXPECT_EQ(merged->count, 4u);
  EXPECT_EQ(merged->vantage_mask, 0b11u);
  EXPECT_EQ(corpus.total_observations(), 4u);

  AddressRecord fresh;
  fresh.address = addr(9, 9);
  fresh.first_seen = fresh.last_seen = 7;
  fresh.count = 2;
  corpus.add_record(fresh);
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.find(addr(9, 9))->count, 2u);
}

TEST(Corpus, MoveTransfersContents) {
  Corpus a;
  a.add(addr(1, 1), 1, 0);
  Corpus b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_NE(b.find(addr(1, 1)), nullptr);
}

TEST(Corpus, MovedFromCorpusIsSafeToUse) {
  // Regression: default moves left the source with an empty slot vector
  // and mask 0, so find()/add() indexed into an empty vector (UB). The
  // moved-from corpus must behave like an empty one and be revivable.
  Corpus a;
  a.add(addr(1, 1), 1, 0);
  Corpus b = std::move(a);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.total_observations(), 0u);
  EXPECT_EQ(a.find(addr(1, 1)), nullptr);
  std::size_t visits = 0;
  a.for_each([&](const AddressRecord&) { ++visits; });
  EXPECT_EQ(visits, 0u);

  a.add(addr(2, 2), 5, 1);  // revives a minimal table
  EXPECT_EQ(a.size(), 1u);
  ASSERT_NE(a.find(addr(2, 2)), nullptr);
  EXPECT_EQ(a.find(addr(2, 2))->count, 1u);

  // Move assignment resets the source the same way, including the
  // observation total.
  Corpus c;
  c.add(addr(3, 3), 9, 2);
  Corpus d;
  d = std::move(c);
  EXPECT_EQ(c.find(addr(3, 3)), nullptr);
  EXPECT_EQ(c.total_observations(), 0u);
  AddressRecord rec;
  rec.address = addr(4, 4);
  rec.first_seen = rec.last_seen = 2;
  rec.count = 3;
  c.add_record(rec);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.total_observations(), 3u);
  EXPECT_EQ(d.find(addr(3, 3))->count, 1u);
}

// Property the sharded collector relies on: merging K per-shard corpora
// built from a partition of an observation stream equals adding the whole
// interleaved stream into one corpus.
class CorpusShardMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(CorpusShardMergeProperty, MergeOfShardsEqualsInterleavedAdd) {
  const int shards = GetParam();
  util::Rng rng(77 + static_cast<std::uint64_t>(shards));

  Corpus combined(32);
  std::vector<Corpus> parts;
  for (int s = 0; s < shards; ++s) parts.emplace_back(16);

  for (int i = 0; i < 30000; ++i) {
    // Small key space forces heavy cross-shard overlap.
    const auto a = addr(rng.bounded(48), rng.bounded(48));
    const auto t = static_cast<util::SimTime>(rng.bounded(500000));
    const auto v = static_cast<std::uint8_t>(rng.bounded(34));  // incl. >31
    combined.add(a, t, v);
    // Shard assignment is arbitrary (here: random) — merge order and
    // partition shape must not matter.
    parts[rng.bounded(static_cast<std::uint64_t>(shards))].add(a, t, v);
  }

  Corpus merged(16);
  for (const auto& part : parts) merged.merge(part);

  ASSERT_EQ(merged.size(), combined.size());
  ASSERT_EQ(merged.total_observations(), combined.total_observations());
  std::size_t checked = 0;
  combined.for_each([&](const AddressRecord& rec) {
    const auto* other = merged.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->first_seen, rec.first_seen);
    EXPECT_EQ(other->last_seen, rec.last_seen);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->vantage_mask, rec.vantage_mask);
    ++checked;
  });
  EXPECT_EQ(checked, merged.size());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, CorpusShardMergeProperty,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// Property: Corpus agrees with a reference std::unordered_map aggregate
// under a random workload.
class CorpusReferenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(CorpusReferenceProperty, MatchesReferenceImplementation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Corpus corpus(32);
  struct Ref {
    std::uint32_t first, last, count, mask;
  };
  std::unordered_map<net::Ipv6Address, Ref> reference;

  for (int i = 0; i < 20000; ++i) {
    // Small key space forces plenty of repeat sightings.
    const auto a = addr(rng.bounded(64), rng.bounded(64));
    const auto t = static_cast<std::uint32_t>(rng.bounded(1000000));
    const auto v = static_cast<std::uint8_t>(rng.bounded(27));
    corpus.add(a, t, v);
    auto [it, inserted] = reference.try_emplace(a, Ref{t, t, 1, 1u << v});
    if (!inserted) {
      it->second.first = std::min(it->second.first, t);
      it->second.last = std::max(it->second.last, t);
      ++it->second.count;
      it->second.mask |= 1u << v;
    }
  }

  ASSERT_EQ(corpus.size(), reference.size());
  for (const auto& [a, ref] : reference) {
    const auto* rec = corpus.find(a);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->first_seen, ref.first);
    EXPECT_EQ(rec->last_seen, ref.last);
    EXPECT_EQ(rec->count, ref.count);
    EXPECT_EQ(rec->vantage_mask, ref.mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusReferenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace v6::hitlist
