#include "proto/ipv6_header.h"

namespace v6::proto {

void Ipv6Header::encode(BufferWriter& out) const {
  const std::uint32_t vtf = (std::uint32_t{6} << 28) |
                            (std::uint32_t{traffic_class} << 20) |
                            (flow_label & 0xfffff);
  out.u32(vtf);
  out.u16(payload_length);
  out.u8(next_header);
  out.u8(hop_limit);
  out.bytes(src.bytes());
  out.bytes(dst.bytes());
}

std::optional<Ipv6Header> Ipv6Header::decode(BufferReader& in) {
  Ipv6Header h;
  const std::uint32_t vtf = in.u32();
  h.payload_length = in.u16();
  h.next_header = in.u8();
  h.hop_limit = in.u8();
  net::Ipv6Address::Bytes src{}, dst{};
  in.bytes(src);
  in.bytes(dst);
  if (in.truncated() || (vtf >> 28) != 6) return std::nullopt;
  h.traffic_class = static_cast<std::uint8_t>(vtf >> 20);
  h.flow_label = vtf & 0xfffff;
  h.src = net::Ipv6Address(src);
  h.dst = net::Ipv6Address(dst);
  return h;
}

std::vector<std::uint8_t> build_datagram(
    Ipv6Header header, std::span<const std::uint8_t> payload) {
  header.payload_length = static_cast<std::uint16_t>(payload.size());
  BufferWriter out;
  header.encode(out);
  out.bytes(payload);
  return std::move(out).take();
}

}  // namespace v6::proto
