// Batch-kernel microbench: records/sec for every batched hot-path kernel
// under the scalar reference and the AVX2 backend, with a per-row
// bit-identity verdict. This is the tracked kernel perf trajectory —
// BENCH_kernels.json is committed and diffed by tools/bench_diff.sh, so
// a backend that drifts from the scalar reference (a stable key flip)
// fails CI even if it got faster.
//
// Scale-free: inputs are synthetic arrays, no simulated world. Rescale
// with V6_BENCH_KERNEL_RECORDS (default 1<<20 records per pass).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "kernels/batch.h"
#include "kernels/dispatch.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace v6;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = util::parse_dec_u64(value);
  return parsed.value_or(fallback);
}

// Runs fn() repeatedly until it has accumulated enough wall time for a
// stable rate, returns records per second.
double measure_per_sec(std::size_t records_per_pass,
                       const std::function<void()>& fn) {
  fn();  // warm caches and page in the buffers
  std::uint64_t passes = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t p = 0; p < passes; ++p) fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (seconds >= 0.2) {
      return static_cast<double>(records_per_pass) *
             static_cast<double>(passes) / seconds;
    }
    passes *= 2;
  }
}

struct Row {
  std::string kernel;
  double scalar_per_sec = 0;
  double avx2_per_sec = 0;  // 0 when AVX2 is unavailable
  bool bit_identical = true;
};

}  // namespace

int main() {
  const auto n = static_cast<std::size_t>(
      env_u64("V6_BENCH_KERNEL_RECORDS", 1ull << 20));
  const bool has_avx2 =
      kernels::detected_backend() == kernels::Backend::kAvx2;
  std::printf(
      "================================================================\n"
      "bench_kernels — batched hot-path kernels, scalar vs AVX2\n"
      "%s records per pass, AVX2 %s "
      "(V6_BENCH_KERNEL_RECORDS to rescale)\n"
      "================================================================\n",
      util::with_commas(n).c_str(),
      has_avx2 ? "available" : "NOT available (scalar rates only)");

  // Shared synthetic inputs: well-mixed IIDs with structured outliers so
  // the classify kernel takes every branch, raw address bytes for the
  // hash, and permutation inputs over an odd domain (cycle-walk heavy).
  std::vector<std::uint64_t> iids(n);
  std::vector<std::uint8_t> accepted(n);
  std::vector<std::uint8_t> bytes(n * 16);
  constexpr std::uint64_t kDomain = 1000003;
  const kernels::FeistelSpec spec =
      kernels::make_feistel_spec(kDomain, 0xbe7cful);
  std::vector<std::uint64_t> perm_in(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = util::mix64(i + 1);
    iids[i] = (i % 17 == 0) ? (r & 0xffff) : r;
    accepted[i] = static_cast<std::uint8_t>(r & 1);
    perm_in[i] = r % kDomain;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(util::mix64(i) >> 13);
  }

  std::vector<double> entropy_s(n), entropy_v(n);
  std::vector<net::AddressCategory> cat_s(n), cat_v(n);
  std::vector<std::uint64_t> u64_s(n), u64_v(n);

  std::vector<Row> rows;

  {
    Row row{.kernel = "iid_entropy"};
    row.scalar_per_sec = measure_per_sec(n, [&] {
      kernels::detail::iid_entropy_batch_scalar(iids.data(), n,
                                                entropy_s.data());
    });
    if (has_avx2) {
      row.avx2_per_sec = measure_per_sec(n, [&] {
        kernels::detail::iid_entropy_batch_avx2(iids.data(), n,
                                                entropy_v.data());
      });
      for (std::size_t i = 0; i < n; ++i) {
        row.bit_identical = row.bit_identical &&
                            std::bit_cast<std::uint64_t>(entropy_s[i]) ==
                                std::bit_cast<std::uint64_t>(entropy_v[i]);
      }
    }
    rows.push_back(row);
  }
  {
    Row row{.kernel = "classify_iid"};
    row.scalar_per_sec = measure_per_sec(n, [&] {
      kernels::detail::classify_iid_batch_scalar(iids.data(),
                                                 accepted.data(), n,
                                                 cat_s.data());
    });
    if (has_avx2) {
      row.avx2_per_sec = measure_per_sec(n, [&] {
        kernels::detail::classify_iid_batch_avx2(iids.data(),
                                                 accepted.data(), n,
                                                 cat_v.data());
      });
      row.bit_identical =
          std::memcmp(cat_s.data(), cat_v.data(),
                      n * sizeof(net::AddressCategory)) == 0;
    }
    rows.push_back(row);
  }
  {
    Row row{.kernel = "ipv6_hash"};
    row.scalar_per_sec = measure_per_sec(n, [&] {
      kernels::detail::ipv6_hash_batch_scalar(bytes.data(), 16, n,
                                              u64_s.data());
    });
    if (has_avx2) {
      row.avx2_per_sec = measure_per_sec(n, [&] {
        kernels::detail::ipv6_hash_batch_avx2(bytes.data(), 16, n,
                                              u64_v.data());
      });
      row.bit_identical = u64_s == u64_v;
    }
    rows.push_back(row);
  }
  {
    Row row{.kernel = "feistel_apply"};
    row.scalar_per_sec = measure_per_sec(n, [&] {
      kernels::detail::feistel_apply_batch_scalar(spec, perm_in.data(), n,
                                                  u64_s.data());
    });
    if (has_avx2) {
      row.avx2_per_sec = measure_per_sec(n, [&] {
        kernels::detail::feistel_apply_batch_avx2(spec, perm_in.data(), n,
                                                  u64_v.data());
      });
      row.bit_identical = u64_s == u64_v;
    }
    rows.push_back(row);
  }
  {
    Row row{.kernel = "feistel_invert"};
    // Invert what apply produced so every input is in-domain.
    std::vector<std::uint64_t> inv_in = u64_s;
    row.scalar_per_sec = measure_per_sec(n, [&] {
      kernels::detail::feistel_invert_batch_scalar(spec, inv_in.data(), n,
                                                   u64_s.data());
    });
    if (has_avx2) {
      row.avx2_per_sec = measure_per_sec(n, [&] {
        kernels::detail::feistel_invert_batch_avx2(spec, inv_in.data(), n,
                                                   u64_v.data());
      });
      row.bit_identical = u64_s == u64_v;
    }
    rows.push_back(row);
  }

  util::TablePrinter table(
      {"kernel", "scalar Mrec/s", "avx2 Mrec/s", "speedup",
       "bit-identical"});
  bench::BenchJson json("bench_kernels");
  json.integer("records", n);
  json.boolean("avx2_available", has_avx2);
  json.text("dispatch_backend",
            kernels::to_string(kernels::active_backend()));

  bool all_identical = true;
  double best_speedup = 0;
  for (const Row& row : rows) {
    const double speedup =
        row.scalar_per_sec > 0 && row.avx2_per_sec > 0
            ? row.avx2_per_sec / row.scalar_per_sec
            : 0;
    best_speedup = std::max(best_speedup, speedup);
    all_identical = all_identical && row.bit_identical;
    char scalar_mrps[32], avx2_mrps[32], speedup_text[32];
    std::snprintf(scalar_mrps, sizeof scalar_mrps, "%.1f",
                  row.scalar_per_sec / 1e6);
    std::snprintf(avx2_mrps, sizeof avx2_mrps, "%.1f",
                  row.avx2_per_sec / 1e6);
    std::snprintf(speedup_text, sizeof speedup_text, "%.2fx", speedup);
    table.add_row({row.kernel, scalar_mrps,
                   has_avx2 ? avx2_mrps : "-",
                   has_avx2 ? speedup_text : "-",
                   row.bit_identical ? "yes" : "NO — BACKEND BUG"});
    json.number(row.kernel + "_scalar_per_sec", row.scalar_per_sec);
    json.number(row.kernel + "_avx2_per_sec", row.avx2_per_sec);
    json.number(row.kernel + "_speedup", speedup);
    json.boolean(row.kernel + "_bit_identical", row.bit_identical);
  }
  table.print(std::cout);

  json.boolean("all_bit_identical", all_identical);
  json.number("best_speedup", best_speedup);
  // Volatile key (matches the drift gate's _speedup pattern) recording
  // whether some kernel cleared 2x this run — the trajectory headline.
  json.boolean("any_speedup_ge_2x", best_speedup >= 2.0);
  json.write("BENCH_kernels.json");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: an AVX2 kernel diverged from the scalar "
                 "reference\n");
    return 1;
  }
  std::printf("all kernels bit-identical across backends\n");
  return 0;
}
