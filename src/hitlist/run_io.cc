#include "hitlist/run_io.h"

#include <algorithm>
#include <array>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "proto/buffer.h"
#include "proto/checksum.h"

namespace v6::hitlist {

namespace {

constexpr char kMagic[8] = {'V', '6', 'R', 'U', 'N', '0', '0', '1'};
// magic + records u64 + observations u64 + index offset u64 + CRC u32.
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 8 + 8 + 4;
// first address (16) + offset u64 + length u32 + count u32 + CRC u32.
constexpr std::uint64_t kIndexEntryBytes = 16 + 8 + 4 + 4 + 4;

// Tag byte layout (see run_io.h).
constexpr std::uint8_t kTagSamePrefix = 0x01;
constexpr std::uint8_t kTagCountOne = 0x02;
constexpr std::uint8_t kTagZeroLifetime = 0x04;
constexpr std::uint8_t kTagSmallMask = 0x08;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// LEB128 decode with bounds checking; rejects encodings past 64 bits.
bool get_varint(std::span<const std::uint8_t> data, std::size_t& pos,
                std::uint64_t& out) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= data.size()) return false;
    const std::uint8_t b = data[pos++];
    if (shift == 63 && (b & 0x7e) != 0) return false;  // would overflow u64
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

void write_all(std::ostream& out, std::span<const std::uint8_t> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("run file: write failed");
}

[[noreturn]] void corrupt() {
  throw std::runtime_error("run file: corrupt block");
}

}  // namespace

RunWriter::RunWriter(std::ostream& out, RunWriterOptions options)
    : out_(&out), options_(options) {
  if (options_.block_records == 0) options_.block_records = 1;
  // Placeholder header; finish() seeks back and patches the magic, the
  // counts, and the index offset.
  const std::vector<std::uint8_t> zeros(kHeaderBytes, 0);
  write_all(*out_, zeros);
  write_offset_ = kHeaderBytes;
}

RunWriter::~RunWriter() = default;

void RunWriter::append(const AddressRecord& rec) {
  if (finished_) {
    throw std::invalid_argument("run writer: append after finish");
  }
  if (rec.count == 0) {
    throw std::invalid_argument("run writer: record with count 0");
  }
  if (records_ > 0 && !(prev_address_ < rec.address)) {
    throw std::invalid_argument("run writer: records not strictly ascending");
  }
  const bool first = block_count_ == 0;
  if (first) block_first_ = rec.address;

  const std::uint64_t hi = rec.address.hi64();
  const std::uint64_t lo = rec.address.lo64();
  const std::uint64_t prev_hi = prev_address_.hi64();
  const std::uint64_t prev_lo = prev_address_.lo64();

  std::uint8_t tag = 0;
  const bool same_prefix = !first && hi == prev_hi;
  if (same_prefix) tag |= kTagSamePrefix;
  if (rec.count == 1) tag |= kTagCountOne;
  if (rec.last_seen == rec.first_seen) tag |= kTagZeroLifetime;
  const bool single_bit =
      rec.vantage_mask != 0 &&
      (rec.vantage_mask & (rec.vantage_mask - 1)) == 0 &&
      rec.vantage_mask < (1u << 16);
  std::uint8_t mask_bit = 0;
  if (single_bit) {
    while ((rec.vantage_mask >> mask_bit) != 1u) ++mask_bit;
    tag |= kTagSmallMask | static_cast<std::uint8_t>(mask_bit << 4);
  }
  block_.push_back(tag);
  if (same_prefix) {
    put_varint(block_, lo - prev_lo);
  } else if (first) {
    put_varint(block_, hi);
    put_varint(block_, lo);
  } else {
    put_varint(block_, hi - prev_hi);
    put_varint(block_, lo);
  }
  put_varint(block_, rec.first_seen);
  if ((tag & kTagZeroLifetime) == 0) {
    put_varint(block_, rec.last_seen - rec.first_seen);
  }
  if ((tag & kTagCountOne) == 0) put_varint(block_, rec.count);
  if ((tag & kTagSmallMask) == 0) put_varint(block_, rec.vantage_mask);

  prev_address_ = rec.address;
  ++block_count_;
  ++records_;
  observations_ += rec.count;
  if (block_count_ >= options_.block_records) flush_block();
}

void RunWriter::flush_block() {
  if (block_count_ == 0) return;
  RunBlockInfo info;
  info.first_address = block_first_;
  info.offset = write_offset_;
  info.byte_length = static_cast<std::uint32_t>(block_.size());
  info.record_count = block_count_;
  info.crc = proto::crc32(block_);
  write_all(*out_, block_);
  write_offset_ += block_.size();
  index_.push_back(info);
  block_.clear();
  block_count_ = 0;
}

RunFileStats RunWriter::finish() {
  if (finished_) throw std::invalid_argument("run writer: double finish");
  finished_ = true;
  flush_block();
  const std::uint64_t index_offset = write_offset_;

  proto::BufferWriter index;
  index.u32(static_cast<std::uint32_t>(index_.size()));
  for (const RunBlockInfo& b : index_) {
    index.bytes(b.first_address.bytes());
    index.u64(b.offset);
    index.u32(b.byte_length);
    index.u32(b.record_count);
    index.u32(b.crc);
  }
  index.u32(proto::crc32(index.data()));
  write_all(*out_, index.data());

  proto::BufferWriter header;
  header.u64(records_);
  header.u64(observations_);
  header.u64(index_offset);
  header.u32(proto::crc32(header.data()));
  out_->seekp(0);
  if (!*out_) throw std::runtime_error("run file: seek failed");
  write_all(*out_, {reinterpret_cast<const std::uint8_t*>(kMagic), 8});
  write_all(*out_, header.data());
  out_->seekp(0, std::ios::end);
  out_->flush();
  if (!*out_) throw std::runtime_error("run file: write failed");

  RunFileStats stats;
  stats.records = records_;
  stats.observations = observations_;
  stats.bytes = index_offset + 4 + index_.size() * kIndexEntryBytes + 4;
  stats.blocks = static_cast<std::uint32_t>(index_.size());
  return stats;
}

RunReader::RunReader(std::istream& in) : in_(&in) {
  in_->clear();
  in_->seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in_->tellg());
  in_->seekg(0);

  std::vector<std::uint8_t> header(kHeaderBytes);
  in_->read(reinterpret_cast<char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  if (in_->gcount() != static_cast<std::streamsize>(header.size())) {
    throw std::runtime_error("run file: truncated header");
  }
  if (!std::equal(kMagic, kMagic + 8,
                  reinterpret_cast<const char*>(header.data()))) {
    throw std::runtime_error("run file: bad magic");
  }
  proto::BufferReader reader{std::span(header).subspan(8)};
  records_ = reader.u64();
  observations_ = reader.u64();
  const std::uint64_t index_offset = reader.u64();
  const std::uint32_t header_crc = reader.u32();
  if (header_crc != proto::crc32(std::span(header).subspan(8, 24))) {
    throw std::runtime_error("run file: header CRC mismatch");
  }

  // The index tail: count + entries + CRC, sized by the count it opens
  // with. The offset and every length are untrusted until cross-checked.
  if (index_offset < kHeaderBytes || index_offset + 8 > file_size) {
    throw std::runtime_error("run file: truncated index");
  }
  in_->seekg(static_cast<std::streamoff>(index_offset));
  std::array<std::uint8_t, 4> count_bytes{};
  in_->read(reinterpret_cast<char*>(count_bytes.data()), 4);
  if (in_->gcount() != 4) throw std::runtime_error("run file: truncated index");
  proto::BufferReader count_reader(count_bytes);
  const std::uint32_t block_count = count_reader.u32();
  const std::uint64_t index_bytes = 4 + block_count * kIndexEntryBytes + 4;
  if (block_count >
          (file_size - index_offset - 8) / kIndexEntryBytes ||
      index_offset + index_bytes > file_size) {
    throw std::runtime_error("run file: truncated index");
  }
  if (index_offset + index_bytes != file_size) {
    throw std::runtime_error("run file: trailing bytes");
  }
  std::vector<std::uint8_t> index_section(index_bytes - 4);
  std::copy(count_bytes.begin(), count_bytes.end(), index_section.begin());
  in_->read(reinterpret_cast<char*>(index_section.data() + 4),
            static_cast<std::streamsize>(index_section.size() - 4));
  if (in_->gcount() !=
      static_cast<std::streamsize>(index_section.size() - 4)) {
    throw std::runtime_error("run file: truncated index");
  }
  std::array<std::uint8_t, 4> crc_bytes{};
  in_->read(reinterpret_cast<char*>(crc_bytes.data()), 4);
  if (in_->gcount() != 4) throw std::runtime_error("run file: truncated index");
  proto::BufferReader crc_reader(crc_bytes);
  if (crc_reader.u32() != proto::crc32(index_section)) {
    throw std::runtime_error("run file: index CRC mismatch");
  }

  proto::BufferReader entries{std::span(index_section).subspan(4)};
  index_.reserve(block_count);
  std::uint64_t expected_offset = kHeaderBytes;
  std::uint64_t total_records = 0;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    RunBlockInfo info;
    net::Ipv6Address::Bytes addr{};
    entries.bytes(addr);
    info.first_address = net::Ipv6Address(addr);
    info.offset = entries.u64();
    info.byte_length = entries.u32();
    info.record_count = entries.u32();
    info.crc = entries.u32();
    // Blocks must tile [header, index) contiguously in file order with
    // ascending first addresses — anything else is a forged index.
    if (info.offset != expected_offset || info.record_count == 0 ||
        info.byte_length == 0 ||
        (b > 0 && !(index_.back().first_address < info.first_address))) {
      throw std::runtime_error("run file: corrupt index");
    }
    expected_offset += info.byte_length;
    total_records += info.record_count;
    index_.push_back(info);
  }
  if (expected_offset != index_offset || total_records != records_) {
    throw std::runtime_error("run file: corrupt index");
  }
}

std::vector<AddressRecord> RunReader::read_block(std::size_t b) const {
  const RunBlockInfo& info = index_[b];
  std::vector<std::uint8_t> data(info.byte_length);
  in_->clear();
  in_->seekg(static_cast<std::streamoff>(info.offset));
  in_->read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (in_->gcount() != static_cast<std::streamsize>(data.size())) {
    throw std::runtime_error("run file: truncated block");
  }
  if (proto::crc32(data) != info.crc) {
    throw std::runtime_error("run file: block CRC mismatch");
  }

  constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  std::vector<AddressRecord> out;
  out.reserve(info.record_count);
  std::size_t pos = 0;
  std::uint64_t prev_hi = 0;
  std::uint64_t prev_lo = 0;
  for (std::uint32_t r = 0; r < info.record_count; ++r) {
    if (pos >= data.size()) corrupt();
    const std::uint8_t tag = data[pos++];
    const bool first = r == 0;
    if ((tag & kTagSmallMask) == 0 && (tag >> 4) != 0) corrupt();
    if (first && (tag & kTagSamePrefix) != 0) corrupt();

    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    if ((tag & kTagSamePrefix) != 0) {
      std::uint64_t delta = 0;
      if (!get_varint(data, pos, delta) || delta == 0 ||
          delta > std::numeric_limits<std::uint64_t>::max() - prev_lo) {
        corrupt();
      }
      hi = prev_hi;
      lo = prev_lo + delta;
    } else if (first) {
      if (!get_varint(data, pos, hi) || !get_varint(data, pos, lo)) corrupt();
    } else {
      std::uint64_t delta = 0;
      if (!get_varint(data, pos, delta) || delta == 0 ||
          delta > std::numeric_limits<std::uint64_t>::max() - prev_hi ||
          !get_varint(data, pos, lo)) {
        corrupt();
      }
      hi = prev_hi + delta;
    }

    AddressRecord rec;
    rec.address = net::Ipv6Address::from_u64(hi, lo);
    std::uint64_t v = 0;
    if (!get_varint(data, pos, v) || v > kU32Max) corrupt();
    rec.first_seen = static_cast<std::uint32_t>(v);
    if ((tag & kTagZeroLifetime) != 0) {
      rec.last_seen = rec.first_seen;
    } else {
      if (!get_varint(data, pos, v) || v == 0 ||
          v > kU32Max - rec.first_seen) {
        corrupt();
      }
      rec.last_seen = rec.first_seen + static_cast<std::uint32_t>(v);
    }
    if ((tag & kTagCountOne) != 0) {
      rec.count = 1;
    } else {
      if (!get_varint(data, pos, v) || v == 0 || v > kU32Max) corrupt();
      rec.count = static_cast<std::uint32_t>(v);
    }
    if ((tag & kTagSmallMask) != 0) {
      rec.vantage_mask = 1u << (tag >> 4);
    } else {
      if (!get_varint(data, pos, v) || v > kU32Max) corrupt();
      rec.vantage_mask = static_cast<std::uint32_t>(v);
    }

    if (first && rec.address != info.first_address) corrupt();
    // Cross-block order: every record stays below the next block's bound
    // (ascent against the previous block follows from the index check).
    if (b + 1 < index_.size() &&
        !(rec.address < index_[b + 1].first_address)) {
      corrupt();
    }
    prev_hi = hi;
    prev_lo = lo;
    out.push_back(rec);
  }
  if (pos != data.size()) corrupt();
  return out;
}

RunReader::Cursor::Cursor(const RunReader* reader, std::size_t block,
                          std::size_t skip)
    : reader_(reader), block_(block), skip_(skip) {}

void RunReader::Cursor::load_block() {
  while (block_ < reader_->index_.size()) {
    decoded_ = reader_->read_block(block_++);
    pos_ = std::min(skip_, decoded_.size());
    skip_ = 0;
    if (pos_ < decoded_.size()) return;
  }
  decoded_.clear();
  pos_ = 0;
}

bool RunReader::Cursor::next(AddressRecord& out) {
  if (pos_ >= decoded_.size()) {
    load_block();
    if (pos_ >= decoded_.size()) return false;
  }
  out = decoded_[pos_++];
  return true;
}

RunReader::Cursor RunReader::cursor_at(const net::Ipv6Address& lo) const {
  // Last block whose first address is <= lo; earlier blocks cannot hold
  // records >= lo... except records inside that block below lo, skipped by
  // decoding it once here.
  std::size_t b = 0;
  {
    std::size_t first = 0;
    std::size_t count = index_.size();
    while (count > 0) {
      const std::size_t step = count / 2;
      const std::size_t mid = first + step;
      if (index_[mid].first_address <= lo) {
        first = mid + 1;
        count -= step + 1;
      } else {
        count = step;
      }
    }
    b = first;  // first block with first_address > lo
  }
  if (b == 0) return Cursor(this, 0, 0);
  const std::size_t block = b - 1;
  const std::vector<AddressRecord> decoded = read_block(block);
  std::size_t skip = 0;
  while (skip < decoded.size() && decoded[skip].address < lo) ++skip;
  return Cursor(this, block, skip);
}

void merge_record_streams(
    std::vector<RecordStream> streams,
    const std::function<bool(const AddressRecord&)>& emit) {
  struct Head {
    AddressRecord rec;
    bool valid = false;
  };
  std::vector<Head> heads(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    heads[i].valid = streams[i](heads[i].rec);
  }
  for (;;) {
    std::size_t best = streams.size();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i].valid &&
          (best == streams.size() ||
           heads[i].rec.address < heads[best].rec.address)) {
        best = i;
      }
    }
    if (best == streams.size()) return;
    AddressRecord agg = heads[best].rec;
    heads[best].valid = streams[best](heads[best].rec);
    // Each input is strictly ascending, so every other stream contributes
    // at most one record for this address. Aggregation matches
    // Corpus::add_record field-for-field (count wraps at u32 like +=).
    for (std::size_t i = best + 1; i < heads.size(); ++i) {
      while (heads[i].valid && heads[i].rec.address == agg.address) {
        agg.first_seen = std::min(agg.first_seen, heads[i].rec.first_seen);
        agg.last_seen = std::max(agg.last_seen, heads[i].rec.last_seen);
        agg.count += heads[i].rec.count;
        agg.vantage_mask |= heads[i].rec.vantage_mask;
        heads[i].valid = streams[i](heads[i].rec);
      }
    }
    if (!emit(agg)) return;
  }
}

}  // namespace v6::hitlist
