// AVX2 backend for the batch kernels.
//
// This is the ONLY translation unit compiled with -mavx2 (see
// src/kernels/CMakeLists.txt); everything else in the tree stays plain
// x86-64 so the binaries run on any machine and only ever execute these
// functions after the CPUID check in dispatch.cc.
//
// Bit-identity with the scalar reference is a design constraint, not an
// accident:
//   * the Feistel and hash kernels are pure 64-bit integer arithmetic —
//     the vector lanes compute exactly the scalar operations;
//   * the entropy kernel does its floating-point accumulation per lane in
//     the same order as the scalar loop (nibble-value 0, 1, ..., 15) with
//     the same IEEE operations, and the two terms the scalar loop skips
//     (count 0 and count 1) contribute exactly +0.0, which is a bitwise
//     no-op on the non-negative partial sums involved;
//   * classification derives from the entropy values plus exact integer
//     tests, so it inherits identity.
// tests/test_kernels.cpp asserts all of this with std::bit_cast compares,
// and bench_kernels re-asserts it per benchmark row.
#include "kernels/batch.h"

#include <cmath>
#include <cstring>

#include "net/entropy.h"

#if defined(__x86_64__) || defined(_M_X64)
#define V6_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define V6_KERNELS_HAVE_AVX2 0
#endif

namespace v6::kernels::detail {

#if V6_KERNELS_HAVE_AVX2

namespace {

// --- 64-bit lane arithmetic ------------------------------------------------

// Low 64 bits of a*b per lane (AVX2 has no vpmullq; synthesize it from
// 32x32->64 products: a*b mod 2^64 = alo*blo + ((alo*bhi + ahi*blo) << 32)).
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// util::mix64 / feistel_mix64, four lanes at a time. Same constants, same
// operations: integer arithmetic has one answer per lane.
inline __m256i mix64_vec(__m256i x) {
  __m256i z = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return __builtin_bswap64(v);
}

// --- Feistel over four lanes -----------------------------------------------

inline __m256i feistel_encrypt_once_vec(const FeistelSpec& spec, __m256i x) {
  const __m256i half_mask =
      _mm256_set1_epi64x(static_cast<long long>(spec.half_mask));
  const __m128i shift = _mm_cvtsi32_si128(spec.half_bits);
  __m256i left = _mm256_and_si256(_mm256_srl_epi64(x, shift), half_mask);
  __m256i right = _mm256_and_si256(x, half_mask);
  for (int r = 0; r < spec.rounds; ++r) {
    const __m256i key = _mm256_set1_epi64x(static_cast<long long>(
        spec.key ^ (static_cast<std::uint64_t>(r) << 56)));
    const __m256i f = _mm256_and_si256(
        mix64_vec(_mm256_xor_si256(right, key)), half_mask);
    const __m256i next = _mm256_xor_si256(left, f);
    left = right;
    right = next;
  }
  return _mm256_or_si256(_mm256_sll_epi64(left, shift), right);
}

inline __m256i feistel_decrypt_once_vec(const FeistelSpec& spec, __m256i y) {
  const __m256i half_mask =
      _mm256_set1_epi64x(static_cast<long long>(spec.half_mask));
  const __m128i shift = _mm_cvtsi32_si128(spec.half_bits);
  __m256i left = _mm256_and_si256(_mm256_srl_epi64(y, shift), half_mask);
  __m256i right = _mm256_and_si256(y, half_mask);
  for (int r = spec.rounds - 1; r >= 0; --r) {
    const __m256i key = _mm256_set1_epi64x(static_cast<long long>(
        spec.key ^ (static_cast<std::uint64_t>(r) << 56)));
    const __m256i f = _mm256_and_si256(
        mix64_vec(_mm256_xor_si256(left, key)), half_mask);
    const __m256i prev = _mm256_xor_si256(right, f);
    right = left;
    left = prev;
  }
  return _mm256_or_si256(_mm256_sll_epi64(left, shift), right);
}

// Cycle-walk four lanes together: lanes already inside the domain are
// frozen by the blend, lanes outside keep re-encrypting — each lane walks
// exactly the sequence the scalar loop walks. Values never exceed
// 2^(2*half_bits) <= 2^62, so plain signed 64-bit compares are correct.
template <typename StepFn>
inline __m256i cycle_walk_vec(const FeistelSpec& spec, __m256i x,
                              StepFn&& step) {
  const __m256i domain =
      _mm256_set1_epi64x(static_cast<long long>(spec.domain_size));
  __m256i y = step(x);
  for (;;) {
    const __m256i in_domain = _mm256_cmpgt_epi64(domain, y);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(in_domain)) == 0xf) return y;
    y = _mm256_blendv_epi8(step(y), y, in_domain);
  }
}

// --- Entropy weight table --------------------------------------------------

// wtab[c] = c * log2(c), built with the same std::log2 the scalar table in
// net/entropy.cc uses, so the per-term products match bitwise. Entries 0
// and 1 are +0.0: the scalar loop skips them, the vector loop adds them —
// a bitwise no-op on non-negative partial sums.
struct WeightTable {
  double w[17];
  WeightTable() {
    w[0] = 0.0;
    for (int c = 1; c <= 16; ++c) {
      w[c] = static_cast<double>(c) * std::log2(static_cast<double>(c));
    }
  }
};
const WeightTable kWeights;

// Expands the 16 nibbles of two IIDs into the two 16-byte halves of a ymm
// (one byte per nibble; order within a half is irrelevant — only counts
// matter).
inline __m256i nibble_bytes_pair(const std::uint64_t* iids) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iids));
  const __m128i nib_mask = _mm_set1_epi8(0x0f);
  const __m128i lo = _mm_and_si128(v, nib_mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), nib_mask);
  return _mm256_set_m128i(_mm_unpackhi_epi8(lo, hi),
                          _mm_unpacklo_epi8(lo, hi));
}

}  // namespace

void iid_entropy_batch_avx2(const std::uint64_t* iids, std::size_t n,
                            double* out) {
  const __m256d four = _mm256_set1_pd(4.0);
  const __m256d sixteen = _mm256_set1_pd(16.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i nib01 = nibble_bytes_pair(iids + i);
    const __m256i nib23 = nibble_bytes_pair(iids + i + 2);
    // weighted[k] = sum over nibble value v (ascending, as in the scalar
    // loop) of wtab[count of v in IID k]; vaddpd lanes are independent,
    // so each lane reproduces the scalar accumulation order exactly.
    __m256d weighted = _mm256_setzero_pd();
    for (int v = 0; v < 16; ++v) {
      const __m256i needle = _mm256_set1_epi8(static_cast<char>(v));
      const unsigned m01 = static_cast<unsigned>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(nib01, needle)));
      const unsigned m23 = static_cast<unsigned>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(nib23, needle)));
      weighted = _mm256_add_pd(
          weighted,
          _mm256_set_pd(kWeights.w[__builtin_popcount(m23 >> 16)],
                        kWeights.w[__builtin_popcount(m23 & 0xffffu)],
                        kWeights.w[__builtin_popcount(m01 >> 16)],
                        kWeights.w[__builtin_popcount(m01 & 0xffffu)]));
    }
    // Same trailing IEEE ops as the scalar path: (4 - w/16) / 4.
    const __m256d h = _mm256_div_pd(
        _mm256_sub_pd(four, _mm256_div_pd(weighted, sixteen)), four);
    _mm256_storeu_pd(out + i, h);
  }
  if (i < n) iid_entropy_batch_scalar(iids + i, n - i, out + i);
}

void classify_iid_batch_avx2(const std::uint64_t* iids,
                             const std::uint8_t* ipv4_accepted, std::size_t n,
                             net::AddressCategory* out) {
  // Entropy dominates classification cost; the structural tests are exact
  // integer compares. Computing entropy for the few special-form IIDs the
  // scalar path would skip changes nothing: the value is simply unused.
  constexpr std::size_t kChunk = 256;
  double entropy[kChunk];
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = n - base < kChunk ? n - base : kChunk;
    iid_entropy_batch_avx2(iids + base, m, entropy);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t iid = iids[base + i];
      net::AddressCategory c;
      if (iid == 0) {
        c = net::AddressCategory::kZeroes;
      } else if ((iid & ~std::uint64_t{0xff}) == 0) {
        c = net::AddressCategory::kLowByte;
      } else if ((iid & ~std::uint64_t{0xffff}) == 0) {
        c = net::AddressCategory::kLow2Bytes;
      } else if (ipv4_accepted != nullptr && ipv4_accepted[base + i]) {
        c = net::AddressCategory::kIpv4Mapped;
      } else {
        switch (net::entropy_band(entropy[i])) {
          case net::EntropyBand::kHigh:
            c = net::AddressCategory::kHighEntropy;
            break;
          case net::EntropyBand::kMedium:
            c = net::AddressCategory::kMediumEntropy;
            break;
          case net::EntropyBand::kLow:
          default:
            c = net::AddressCategory::kLowEntropy;
            break;
        }
      }
      out[base + i] = c;
    }
  }
}

void ipv6_hash_batch_avx2(const std::uint8_t* bytes, std::size_t stride_bytes,
                          std::size_t n, std::uint64_t* out) {
  const __m256i seed =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* p0 = bytes + i * stride_bytes;
    const std::uint8_t* p1 = p0 + stride_bytes;
    const std::uint8_t* p2 = p1 + stride_bytes;
    const std::uint8_t* p3 = p2 + stride_bytes;
    const __m256i hi = _mm256_set_epi64x(
        static_cast<long long>(load_be64(p3)),
        static_cast<long long>(load_be64(p2)),
        static_cast<long long>(load_be64(p1)),
        static_cast<long long>(load_be64(p0)));
    const __m256i lo = _mm256_set_epi64x(
        static_cast<long long>(load_be64(p3 + 8)),
        static_cast<long long>(load_be64(p2 + 8)),
        static_cast<long long>(load_be64(p1 + 8)),
        static_cast<long long>(load_be64(p0 + 8)));
    // net::Ipv6AddressHash: mix64(hi ^ seed) ^ mix64(lo).
    const __m256i h = _mm256_xor_si256(mix64_vec(_mm256_xor_si256(hi, seed)),
                                       mix64_vec(lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  if (i < n) {
    ipv6_hash_batch_scalar(bytes + i * stride_bytes, stride_bytes, n - i,
                           out + i);
  }
}

void feistel_apply_batch_avx2(const FeistelSpec& spec, const std::uint64_t* in,
                              std::size_t n, std::uint64_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i y = cycle_walk_vec(
        spec, x, [&](__m256i v) { return feistel_encrypt_once_vec(spec, v); });
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), y);
  }
  if (i < n) feistel_apply_batch_scalar(spec, in + i, n - i, out + i);
}

void feistel_invert_batch_avx2(const FeistelSpec& spec,
                               const std::uint64_t* in, std::size_t n,
                               std::uint64_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i x = cycle_walk_vec(
        spec, y, [&](__m256i v) { return feistel_decrypt_once_vec(spec, v); });
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  if (i < n) feistel_invert_batch_scalar(spec, in + i, n - i, out + i);
}

#else  // !V6_KERNELS_HAVE_AVX2

// Non-x86 builds: the dispatcher never selects kAvx2 (detected_backend()
// is scalar-only there), but keep the symbols defined so the library
// links identically everywhere.
void iid_entropy_batch_avx2(const std::uint64_t* iids, std::size_t n,
                            double* out) {
  iid_entropy_batch_scalar(iids, n, out);
}
void classify_iid_batch_avx2(const std::uint64_t* iids,
                             const std::uint8_t* ipv4_accepted, std::size_t n,
                             net::AddressCategory* out) {
  classify_iid_batch_scalar(iids, ipv4_accepted, n, out);
}
void ipv6_hash_batch_avx2(const std::uint8_t* bytes, std::size_t stride_bytes,
                          std::size_t n, std::uint64_t* out) {
  ipv6_hash_batch_scalar(bytes, stride_bytes, n, out);
}
void feistel_apply_batch_avx2(const FeistelSpec& spec, const std::uint64_t* in,
                              std::size_t n, std::uint64_t* out) {
  feistel_apply_batch_scalar(spec, in, n, out);
}
void feistel_invert_batch_avx2(const FeistelSpec& spec,
                               const std::uint64_t* in, std::size_t n,
                               std::uint64_t* out) {
  feistel_invert_batch_scalar(spec, in, n, out);
}

#endif  // V6_KERNELS_HAVE_AVX2

}  // namespace v6::kernels::detail
