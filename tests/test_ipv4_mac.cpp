#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "net/mac.h"
#include "util/rng.h"

namespace v6::net {
namespace {

TEST(Ipv4Address, RoundTrip) {
  const Ipv4Address a(192, 168, 1, 1);
  EXPECT_EQ(a.to_string(), "192.168.1.1");
  EXPECT_EQ(Ipv4Address::parse("192.168.1.1"), a);
  EXPECT_EQ(a.value(), 0xc0a80101u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(3), 1);
}

TEST(Ipv4Address, ParseEdges) {
  EXPECT_TRUE(Ipv4Address::parse("0.0.0.0"));
  EXPECT_TRUE(Ipv4Address::parse("255.255.255.255"));
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.1.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("01.1.1.1"));  // leading zero
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse(""));
}

TEST(MacAddress, RoundTripString) {
  const auto mac = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(mac);
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
  EXPECT_EQ(mac->to_u64(), 0xaabbccddeeffULL);
}

TEST(MacAddress, DashSeparatorAndCase) {
  const auto mac = MacAddress::parse("AA-BB-CC-00-11-22");
  ASSERT_TRUE(mac);
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:00:11:22");
}

TEST(MacAddress, ParseInvalid) {
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee"));
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:ff:00"));
  EXPECT_FALSE(MacAddress::parse("aabb:cc:dd:ee:ff"));
  EXPECT_FALSE(MacAddress::parse("gg:bb:cc:dd:ee:ff"));
  EXPECT_FALSE(MacAddress::parse(""));
}

TEST(MacAddress, OuiAndSuffix) {
  const auto mac = MacAddress::from_u64(0xf00220123456ULL);
  EXPECT_EQ(mac.oui().value(), 0xf00220u);
  EXPECT_EQ(mac.oui().to_string(), "f0:02:20");
  EXPECT_EQ(mac.suffix(), 0x123456u);
}

TEST(MacAddress, UniversalLocalBit) {
  const auto universal = MacAddress::from_u64(0x00aabbccddeeULL);
  EXPECT_FALSE(universal.is_local());
  const auto local = universal.with_ul_flipped();
  EXPECT_TRUE(local.is_local());
  EXPECT_EQ(local.with_ul_flipped(), universal);
}

TEST(MacAddress, MulticastBit) {
  EXPECT_TRUE(MacAddress::from_u64(0x010000000000ULL).is_multicast());
  EXPECT_FALSE(MacAddress::from_u64(0x020000000000ULL).is_multicast());
}

TEST(MacAddress, FromU64MasksTo48Bits) {
  const auto mac = MacAddress::from_u64(0x0011223344556677ULL);
  // Only the low 48 bits are kept.
  EXPECT_EQ(mac.to_u64(), 0x223344556677ULL);
}

class MacRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MacRoundTrip, ParseFormatIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    const auto mac = MacAddress::from_u64(rng.next() & 0xffffffffffffULL);
    const auto parsed = MacAddress::parse(mac.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, mac);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacRoundTrip, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace v6::net
