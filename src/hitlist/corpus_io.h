// Corpus serialization: a compact, versioned binary snapshot so studies
// can be collected once and analyzed many times (or shipped between
// machines). Format v2 (written by save_corpus):
//
//   magic "V6CORP02"            8 bytes
//   record count                u64 LE-free (big-endian like the wire)
//   total observations          u64
//   header CRC32                u32 over the two u64 header fields
//   records: address(16) first_seen(4) last_seen(4) count(4) vantages(4)
//   records CRC32               u32 over the whole records section
//
// The per-section CRC32s (IEEE, see proto::crc32) catch bit rot in
// long-lived checkpoint files, where a flipped count would otherwise load
// as a silently wrong corpus. Format v1 ("V6CORP01", no CRCs) is still
// readable.
//
// Everything goes through proto::BufferWriter/Reader, so byte order and
// truncation handling match the rest of the codebase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "hitlist/corpus.h"

namespace v6::proto {
class BufferWriter;
}  // namespace v6::proto

namespace v6::hitlist {

// Streams a v2 snapshot record-by-record, so writers that cannot (or must
// not) materialize the whole corpus — the out-of-core engine's save(), the
// chunked save_corpus() — produce bytes identical to the one-shot path.
// The records CRC is chained across flush chunks (proto::crc32's seed
// parameter), which is exactly the whole-section CRC of the v2 format.
//
// The record and observation totals live in the header, which is written
// up front, so they must be known at construction; finish() throws if the
// append count disagrees (a two-pass writer whose passes diverged must
// fail loudly, not write a snapshot that cannot load).
class CorpusSnapshotWriter {
 public:
  CorpusSnapshotWriter(std::ostream& out, std::uint64_t records,
                       std::uint64_t observations);

  CorpusSnapshotWriter(const CorpusSnapshotWriter&) = delete;
  CorpusSnapshotWriter& operator=(const CorpusSnapshotWriter&) = delete;

  // Appends one record (in the order it should appear in the snapshot).
  void append(const AddressRecord& rec);

  // Flushes the tail chunk and writes the records CRC. Must be called
  // exactly once; returns total bytes written.
  std::size_t finish();

 private:
  void flush_chunk();

  std::ostream* out_;
  std::uint64_t expected_records_;
  std::uint64_t appended_ = 0;
  std::vector<std::uint8_t> chunk_;
  std::uint32_t records_crc_ = 0;
  std::size_t bytes_ = 0;
  bool finished_ = false;
};

// Writes a v2 snapshot; returns bytes written. Streams in bounded chunks
// (via CorpusSnapshotWriter) — peak extra memory is one chunk, not one
// serialized corpus.
std::size_t save_corpus(std::ostream& out, const Corpus& corpus);

// Appends a v2 snapshot to an existing writer (used to embed the corpus
// inside a collection checkpoint).
void save_corpus(proto::BufferWriter& out, const Corpus& corpus);

// Loads a snapshot (v1 or v2), reading the stream in bounded chunks —
// peak memory is the corpus itself plus one chunk, whatever the file
// size. Throws std::runtime_error on bad magic, truncation, CRC mismatch,
// an observation total that overflows u64, or trailing garbage. Note the
// streaming tradeoff: the records CRC can only be verified after the
// records were parsed, so a corrupt file may surface as any of those
// errors — but never loads.
Corpus load_corpus(std::istream& in);

// Same, from an in-memory buffer that must contain exactly one snapshot.
Corpus load_corpus(std::span<const std::uint8_t> bytes);

}  // namespace v6::hitlist
