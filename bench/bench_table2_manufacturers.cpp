// Table 2 + §5.1 — EUI-64 prevalence and the manufacturers of the embedded
// MAC addresses. Headlines: ~3% of the corpus is EUI-64 (far above the
// 2^-16 random-match floor); the largest bucket is "Unlisted" OUIs; the
// named makers are IoT/smart-home/mobile brands.
#include "analysis/eui64_tracking.h"
#include "analysis/manufacturers.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Table 2 / §5.1: EUI-64 manufacturers", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& r = study.results();

  analysis::Eui64Tracker tracker(r.ntp, study.world());
  const auto table2 = analysis::manufacturer_table(
      tracker.tracks(), study.world().ouis(), 10);

  util::TablePrinter table({"Manufacturer", "MACs", "share"});
  for (const auto& row : table2) {
    table.add_row({row.name, util::with_commas(row.mac_count),
                   util::percent(static_cast<double>(row.mac_count) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     1, tracker.unique_macs())))});
  }
  table.print(std::cout);

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row(
      "EUI-64 share of corpus", "3%",
      util::percent(static_cast<double>(tracker.eui64_addresses()) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, tracker.corpus_addresses()))));
  comparison.row("EUI-64 addresses", "238,281,703 (unscaled)",
                 util::with_commas(tracker.eui64_addresses()));
  comparison.row("unique embedded MACs", "171,611,786 (unscaled)",
                 util::with_commas(tracker.unique_macs()));
  comparison.row("expected random EUI-64 lookalikes", "< 121,000 (N/2^16)",
                 util::with_commas(tracker.expected_random_matches()));
  comparison.row("top bucket", "Unlisted (73.9%)",
                 table2.empty() ? "-" : table2.front().name);
  comparison.row(
      "single-MAC unlisted OUIs (random lookalikes)", "42,901 (unscaled)",
      util::with_commas(analysis::single_mac_unlisted_ouis(
          tracker.tracks(), study.world().ouis())));
  comparison.print();
  return 0;
}
