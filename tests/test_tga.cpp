#include "scan/tga.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "netsim/data_plane.h"

namespace v6::scan {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

// Training set: constant /64 prefix, random low 32 bits, zero middle.
std::vector<net::Ipv6Address> structured_training(std::size_t n,
                                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<net::Ipv6Address> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(addr(0x20010db800420000ULL, rng.next() & 0xffffffffULL));
  }
  return out;
}

TEST(EntropyIp, LearnsStablePrefixAndRandomTail) {
  EntropyIpModel model;
  model.train(structured_training(500, 1));
  ASSERT_TRUE(model.trained());

  // First segments must be stable (the constant /64 + zero middle),
  // the tail random.
  EXPECT_EQ(model.segments().front().kind,
            EntropyIpModel::Segment::Kind::kStable);
  EXPECT_EQ(model.segments().back().kind,
            EntropyIpModel::Segment::Kind::kRandom);
}

TEST(EntropyIp, GeneratesInsideLearnedStructure) {
  EntropyIpModel model;
  model.train(structured_training(500, 2));
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto candidate = model.generate_one(rng);
    EXPECT_EQ(candidate.hi64(), 0x20010db800420000ULL);
    EXPECT_EQ(candidate.lo64() >> 32, 0u);
  }
}

TEST(EntropyIp, GeneratedTailsVary) {
  EntropyIpModel model;
  model.train(structured_training(500, 4));
  util::Rng rng(5);
  std::unordered_set<net::Ipv6Address> unique;
  for (int i = 0; i < 300; ++i) unique.insert(model.generate_one(rng));
  EXPECT_GT(unique.size(), 250u);
}

TEST(EntropyIp, ValuedSegmentsReproduceHistogram) {
  // Two low-64 values at 70/30: the generator should visit both, biased.
  std::vector<net::Ipv6Address> training;
  for (int i = 0; i < 70; ++i) training.push_back(addr(0xaa, 0x1111));
  for (int i = 0; i < 30; ++i) training.push_back(addr(0xaa, 0x2222));
  EntropyIpModel model;
  model.train(training);
  util::Rng rng(6);
  int ones = 0, twos = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto lo = model.generate_one(rng).lo64();
    ones += lo == 0x1111;
    twos += lo == 0x2222;
  }
  EXPECT_GT(ones, twos);
  EXPECT_GT(twos, 300);
  EXPECT_NEAR(static_cast<double>(ones) / 2000, 0.7, 0.08);
}

TEST(EntropyIp, DeterministicGivenSeed) {
  EntropyIpModel model;
  model.train(structured_training(200, 7));
  util::Rng a(9), b(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(model.generate_one(a), model.generate_one(b));
  }
}

TEST(EntropyIp, TrainOnEmptyThrows) {
  EntropyIpModel model;
  EXPECT_THROW(model.train({}), std::invalid_argument);
  util::Rng rng(1);
  EXPECT_THROW(model.generate_one(rng), std::logic_error);
}

TEST(SpaceTree, ClustersIntoDenseRegions) {
  std::vector<net::Ipv6Address> training;
  util::Rng rng(11);
  // Two dense /96-ish clusters far apart.
  for (int i = 0; i < 400; ++i) {
    training.push_back(addr(0x2001000000000000ULL, rng.bounded(1 << 16)));
    training.push_back(addr(0x2a00fff000000000ULL,
                            0x5000000000000000ULL | rng.bounded(1 << 16)));
  }
  SpaceTreeModel model;
  model.train(training);
  ASSERT_TRUE(model.trained());
  EXPECT_GE(model.regions().size(), 2u);

  // Candidates stay inside one of the two clusters' /32s.
  util::Rng gen(12);
  for (int i = 0; i < 200; ++i) {
    const auto hi = model.generate_one(gen).hi64() >> 32;
    EXPECT_TRUE(hi == 0x20010000u || hi == 0x2a00fff0u) << std::hex << hi;
  }
}

TEST(SpaceTree, DensityProportionalSampling) {
  std::vector<net::Ipv6Address> training;
  util::Rng rng(13);
  for (int i = 0; i < 900; ++i) {
    training.push_back(addr(0x2001000000000000ULL, rng.next()));
  }
  for (int i = 0; i < 100; ++i) {
    training.push_back(addr(0x2a00000000000000ULL, rng.next()));
  }
  SpaceTreeModel model;
  model.train(training);
  util::Rng gen(14);
  int dense = 0;
  for (int i = 0; i < 1000; ++i) {
    if ((model.generate_one(gen).hi64() >> 48) == 0x2001) ++dense;
  }
  EXPECT_NEAR(static_cast<double>(dense) / 1000, 0.9, 0.05);
}

TEST(SpaceTree, LeafThresholdControlsGranularity) {
  const auto training = structured_training(256, 15);
  SpaceTreeModel coarse({256, 24});
  coarse.train(training);
  SpaceTreeModel fine({4, 30});
  fine.train(training);
  EXPECT_LT(coarse.regions().size(), fine.regions().size());
}

TEST(SpaceTree, RegionCountsSumToTrainingSize) {
  const auto training = structured_training(333, 16);
  SpaceTreeModel model;
  model.train(training);
  std::size_t total = 0;
  for (const auto& region : model.regions()) total += region.count;
  EXPECT_EQ(total, 333u);
}

TEST(TgaEvaluation, ScoresAgainstWorldGroundTruth) {
  sim::WorldConfig config;
  config.seed = 17;
  config.total_sites = 400;
  const auto world = sim::World::generate(config);
  netsim::DataPlane plane(world, {0.0, 1});

  // Train a space tree on router interface addresses: their region is
  // dense and persistent, so generated ::1-style candidates hit.
  std::vector<net::Ipv6Address> routers;
  for (std::uint32_t ai = 0; ai < world.ases().size() && ai < 40; ++ai) {
    for (std::uint32_t r = 0; r < world.ases()[ai].router_count; ++r) {
      routers.push_back(world.router_address(ai, r, 1));
    }
  }
  ASSERT_GT(routers.size(), 50u);
  SpaceTreeModel model({4, 30});
  model.train(routers);
  util::Rng rng(18);
  const auto candidates = model.generate(500, rng);

  Zmap6Scanner scanner(plane, {world.vantages().front().address, 100000, 0,
                               19});
  const auto evaluation =
      evaluate_candidates(candidates, routers, scanner, 1000);
  EXPECT_EQ(evaluation.generated, 500u);
  EXPECT_GT(evaluation.unique, 0u);
  EXPECT_GT(evaluation.responsive, 0u);
  EXPECT_LE(evaluation.new_responsive, evaluation.responsive);
}

}  // namespace
}  // namespace v6::scan
