// Simulated time.
//
// The study runs on a virtual clock measured in seconds since the simulated
// epoch (2022-01-25T00:00:00Z in study terms, but the library only needs
// relative arithmetic). Library code never consults the wall clock.
#pragma once

#include <cstdint>
#include <string>

namespace v6::util {

// Seconds since the simulation epoch.
using SimTime = std::int64_t;
// Difference between two SimTime values, in seconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60;
inline constexpr SimDuration kHour = 3600;
inline constexpr SimDuration kDay = 86400;
inline constexpr SimDuration kWeek = 7 * kDay;
// Paper durations are quoted in calendar months; 30 days is close enough for
// bucketing lifetimes.
inline constexpr SimDuration kMonth = 30 * kDay;

// "0s", "90s", "12m", "3h", "2d", "5w" — coarse human form for figure axes.
std::string format_duration(SimDuration d);

}  // namespace v6::util
