// The real-process coordinator: grants chunk leases to worker processes
// over the file-mailbox transport, tracks liveness by wall-clock
// heartbeat silence, fences revoked leases with epochs, and performs the
// deterministic merge over the workers' final checkpoint artifacts.
//
// The in-process SimCluster and this class implement the same protocol;
// the cluster proves the merge invariants deterministically under seeded
// faults, this one survives actual `kill -9` (the CI smoke job does
// exactly that and diffs the merged corpus against the single-process
// reference byte-for-byte).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "hitlist/checkpoint_io.h"
#include "hitlist/corpus.h"
#include "obs/cluster.h"
#include "util/sim_time.h"

namespace v6::dist {

struct CoordinatorConfig {
  std::string dir;  // shared run directory (mailboxes, ckpt/, frames.log)
  // Expected initial fleet size: used only to broadcast shutdown to
  // mailboxes of workers that never said hello.
  std::uint32_t workers = 4;
  std::uint32_t subsets = 0;  // 0 -> workers
  util::SimDuration chunk_interval = util::kWeek;
  // Wall-clock liveness and pacing.
  std::uint32_t heartbeat_timeout_ms = 10000;
  std::uint32_t retry_backoff_ms = 200;
  std::uint32_t poll_interval_ms = 25;
  // Overall deadline; exceeded means the run failed loudly.
  std::uint32_t max_wall_ms = 600000;
};

struct CoordinatorResult {
  hitlist::Corpus corpus{1};  // merged + canonicalized
  std::uint64_t polls_attempted = 0;
  std::uint64_t polls_answered = 0;
  std::vector<hitlist::VantageHealthStats> vantage_health;
  std::uint64_t leases_granted = 0;
  std::uint64_t checkpoints_uploaded = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t reassignments = 0;
  std::uint64_t stale_uploads_rejected = 0;
  // Per-subset worker observability reports (kObsReport frames), epoch-
  // fenced exactly like checkpoint uploads. Counter families aggregate to
  // the single-process values because only completing leases report.
  obs::ClusterAggregator cluster_obs;
};

class Coordinator {
 public:
  explicit Coordinator(const CoordinatorConfig& config);

  // Drives the fleet over the collection window [start, end); blocks
  // until every subset completed (then broadcasts shutdown) or the
  // deadline passes (throws std::runtime_error).
  CoordinatorResult run(util::SimTime start, util::SimTime end);

 private:
  CoordinatorConfig config_;
};

}  // namespace v6::dist
