# Empty compiler generated dependencies file for bench_fig3_backscan.
# This may be replaced when dependencies are built.
