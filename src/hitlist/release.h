// Ethical dataset release (§3, §6): the paper publishes its corpus only at
// /48 granularity, because full addresses would expose the EUI-64 tracking
// and geolocation vectors it demonstrates. This module renders a corpus as
// the aggregated artifact (sorted unique /48s with address counts) and
// reads it back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hitlist/corpus.h"
#include "net/prefix.h"

namespace v6::hitlist {

struct ReleaseEntry {
  net::Ipv6Prefix prefix;  // a /48
  std::uint64_t address_count = 0;

  friend bool operator==(const ReleaseEntry&, const ReleaseEntry&) = default;
};

// Aggregates a corpus to sorted unique /48s.
std::vector<ReleaseEntry> aggregate_to_slash48(const Corpus& corpus);

// Writes "prefix/48,count" lines after a comment header. Rows whose
// address count is below `min_count` are suppressed (k-anonymity style:
// the NTP Pool operators asked for released data to be aggregated enough
// to protect individual users, and a /48 containing a single address
// aggregates nothing). The header records how many rows were withheld.
void write_release(std::ostream& out, const std::vector<ReleaseEntry>& rows,
                   std::uint64_t min_count = 1);

// Parses a release back; ignores comment lines. Throws std::runtime_error
// on malformed rows.
std::vector<ReleaseEntry> read_release(std::istream& in);

}  // namespace v6::hitlist
