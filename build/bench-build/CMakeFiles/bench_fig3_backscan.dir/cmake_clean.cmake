file(REMOVE_RECURSE
  "../bench/bench_fig3_backscan"
  "../bench/bench_fig3_backscan.pdb"
  "CMakeFiles/bench_fig3_backscan.dir/bench_fig3_backscan.cpp.o"
  "CMakeFiles/bench_fig3_backscan.dir/bench_fig3_backscan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_backscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
