// v6pool_cli — a small command-line driver for the library, the sort of
// entry point a downstream user scripts against.
//
//   v6pool_cli world  [--sites N] [--seed S]
//       generate a world and print its inventory
//   v6pool_cli study  [--sites N] [--days D] [--seed S] [--threads T]
//                     [--memory-budget-mb M] [--spill-dir DIR]
//                     [--release FILE] [--metrics-out FILE]
//                     [--metrics-format prom|json]
//                     [--sample-days D] [--timeline-out FILE]
//                     [--timeline-format jsonl|csv] [--trace-out FILE]
//       run every stage and print the headline numbers; --threads T runs
//       the analysis scans on T threads (0 = all cores, results are
//       bit-identical at any count); --memory-budget-mb M runs the
//       collection out-of-core, spilling shard tables to sorted run files
//       (in --spill-dir, or a temp directory) whenever they cross M MiB —
//       every number printed is bit-identical to the in-memory run;
//       optionally write the /48-aggregated release (k-anonymity floor 3)
//       to FILE, and/or the study's metrics snapshot (Prometheus text by
//       default) to --metrics-out.
//       --sample-days D turns on sim-time timeline sampling every D days;
//       --timeline-out writes the sampled WindowRecords (JSONL default),
//       --trace-out writes a Chrome trace-event file (chrome://tracing /
//       Perfetto) of the study's stage spans plus sampling windows
//       The study subcommand also fronts distributed collection:
//       --collect-only runs stage 1 alone (for snapshot diffing);
//       --dist-workers N simulates an N-worker coordinator/worker cluster
//       (bit-identical to the single-process run); --dist-kills K kills
//       exactly K workers mid-run to exercise recovery; --frames-out
//       writes the V6DIST01 frame log (lint-dist input).
//   v6pool_cli query --corpus FILE [--addr A] [--p48 A] [--p64 A]
//                    [--oui O] [--queries FILE]
//       load a V6CORP snapshot into the serving layer (one epoch) and
//       answer point / /48-density / /64-entropy / per-OUI EUI-64-risk
//       queries; --queries FILE runs one `kind arg` query per line
//   v6pool_cli serve [--sites N] [--days D] [--seed S] [--threads T]
//                    [--memory-budget-mb M] [--epoch-days E]
//                    [--retain-epochs R] [--addr A] [--p48 A] [--p64 A]
//                    [--oui O] [--queries FILE]
//       run stage 1 with the hitlist-as-a-service layer on: the collector
//       publishes an immutable epoch snapshot every E sim-days (plus the
//       final window-end epoch), prints one line per retained epoch
//       (records, table sizes, answer digest), then answers the given
//       queries against the final epoch
//   v6pool_cli coordinator --dir D [--workers N] [--subsets S]
//                          [--chunk-days C] [--heartbeat-timeout-ms MS]
//                          [--save-corpus FILE] [--sites N] [--days D]
//                          [--seed S]
//       real multi-process mode: drive worker processes sharing --dir,
//       merge their artifacts, optionally save the merged corpus
//   v6pool_cli worker --dir D --id I [--chunk-delay-ms MS] [--sites N]
//                     [--days D] [--seed S]
//       one worker process; run N of these against one coordinator
//   v6pool_cli lint-metrics FILE
//       validate a Prometheus text exposition file (exit 0 iff clean)
//   v6pool_cli lint-timeline FILE
//       validate a JSONL timeline file (exit 0 iff clean)
//   v6pool_cli lint-trace FILE
//       validate a Chrome trace-event JSON file (exit 0 iff clean)
//   v6pool_cli lint-dist FILE
//       validate a V6DIST01 frame log (exit 0 iff clean)
//   v6pool_cli obs-report [study flags] [--query-count Q] [--out FILE]
//       run stage 1 with serving + timeline sampling, drive a
//       deterministic query workload, and emit the unified run-report
//       JSON (config digest, kernel backend, metric totals, serve-side
//       latency percentiles, epoch digests, timeline pointer); with
//       --dist-workers also aggregates per-worker kObsReport frames and
//       honors the --cluster-*-out artifact flags
//   v6pool_cli lint-report FILE
//       validate a v6pool_run_report JSON artifact (exit 0 iff clean)
//
// Every subcommand also accepts --kernels scalar|auto, pinning the
// batch-kernel backend for the process (auto picks the best SIMD tier
// the CPU supports; results are bit-identical either way). Setting
// V6_FORCE_SCALAR=1 in the environment pins scalar even over --kernels.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include <vector>

#include "analysis/dataset_compare.h"
#include "analysis/eui64_tracking.h"
#include "analysis/scan_source.h"
#include "core/study.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "hitlist/corpus_io.h"
#include "hitlist/release.h"
#include "kernels/dispatch.h"
#include "obs/cluster.h"
#include "obs/exposition.h"
#include "obs/timeline.h"
#include "obs/trace_export.h"
#include "util/strings.h"

namespace {

using namespace v6;

[[noreturn]] void die_flag(const char* name, const char* value,
                           const std::string& why) {
  std::fprintf(stderr, "v6pool_cli: bad value '%s' for %s: %s\n", value, name,
               why.c_str());
  std::exit(2);
}

// A numeric flag. Absent -> fallback; present but unparseable or above
// `max` -> loud exit(2) naming the flag. Never silently defaults a typo'd
// value: a study quietly run at the wrong scale is the worst failure mode
// a CLI can have.
std::uint64_t flag_u64(
    int argc, char** argv, const char* name, std::uint64_t fallback,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      const auto parsed = util::parse_dec_u64(argv[i + 1]);
      if (!parsed) {
        die_flag(name, argv[i + 1], "expected a non-negative integer");
      }
      if (*parsed > max) {
        die_flag(name, argv[i + 1],
                 "exceeds the maximum of " + std::to_string(max));
      }
      return *parsed;
    }
  }
  return fallback;
}

// Flags that land in 32-bit config fields: same contract, range-checked
// here instead of silently truncated by a narrowing cast at the call site.
std::uint32_t flag_u32(int argc, char** argv, const char* name,
                       std::uint32_t fallback) {
  return static_cast<std::uint32_t>(
      flag_u64(argc, argv, name, fallback,
               std::numeric_limits<std::uint32_t>::max()));
}

// Day-count flags: bounded before the * kDay multiply so an oversized
// value cannot wrap the int64 sim clock (previously it silently did).
util::SimDuration flag_days(int argc, char** argv, const char* name,
                            std::uint64_t fallback_days) {
  constexpr std::uint64_t kMaxDays = 36'500'000;  // 100k years of sim time
  return static_cast<util::SimDuration>(
             flag_u64(argc, argv, name, fallback_days, kMaxDays)) *
         util::kDay;
}

const char* flag_str(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// --kernels scalar|auto pins (or re-enables) the batch-kernel backend for
// the whole process, every subcommand. Same contract as the numeric
// flags: an unknown value exits 2 naming the flag, never silently runs
// with a backend the user did not ask for. The V6_FORCE_SCALAR env pin
// still wins over --kernels auto (see kernels::resolve_backend).
void apply_kernels_flag(int argc, char** argv) {
  const char* value = flag_str(argc, argv, "--kernels");
  if (value == nullptr) return;
  if (std::strcmp(value, "scalar") == 0) {
    kernels::force_backend(kernels::Backend::kScalar);
  } else if (std::strcmp(value, "auto") == 0) {
    kernels::force_backend(std::nullopt);
  } else {
    die_flag("--kernels", value, "expected 'scalar' or 'auto'");
  }
}

// The shared simulation knobs. Every process of a distributed run — the
// coordinator, each worker, and the single-process reference — must build
// its StudyConfig through this one function from the same flags, because
// bit-identity rests on all of them simulating the same world.
core::StudyConfig build_study_config(int argc, char** argv) {
  core::StudyConfig config;
  config.world.total_sites = flag_u32(argc, argv, "--sites", 5000);
  config.world.seed = flag_u64(argc, argv, "--seed", 42);
  config.world.study_duration = flag_days(argc, argv, "--days", 120);
  config.backscan_start = config.world.study_duration + 26 * util::kDay;
  config.hitlist_campaign.duration = std::max<util::SimDuration>(
      config.world.study_duration - 25 * util::kDay, 4 * util::kWeek);
  config.caida_campaign.duration =
      std::min<util::SimDuration>(62 * util::kDay,
                                  config.world.study_duration);
  config.analysis.threads = flag_u32(argc, argv, "--threads", 1);
  if (const std::uint64_t budget_mb =
          flag_u64(argc, argv, "--memory-budget-mb", 0, 1ull << 34);
      budget_mb > 0) {
    config.spill.memory_budget_bytes =
        static_cast<std::size_t>(budget_mb) << 20;
    if (const char* dir = flag_str(argc, argv, "--spill-dir")) {
      config.spill.directory = dir;
    }
  }
  return config;
}

// FNV-1a over the canonical config string: the run report's config digest,
// so two reports are comparable iff they describe the same simulation.
std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Writes the cluster-observability artifacts of a distributed run:
// --cluster-metrics-out (aggregated Prometheus exposition),
// --cluster-timeline-out (merged per-worker JSONL windows), and
// --cluster-trace-out (multi-lane Chrome trace, one pid lane per worker
// report). Returns 0, or 1 on an unopenable path.
int write_cluster_artifacts(int argc, char** argv,
                            const obs::ClusterAggregator& cluster) {
  if (const char* path = flag_str(argc, argv, "--cluster-metrics-out")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    const obs::Snapshot merged = cluster.cluster_snapshot();
    out << obs::render(merged, obs::ExpositionFormat::kPrometheus);
    std::printf("cluster metrics : %zu samples -> %s (prom)\n",
                merged.samples.size(), path);
  }
  if (const char* path = flag_str(argc, argv, "--cluster-timeline-out")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << cluster.render_cluster_timeline();
    std::printf("cluster timeline: %zu windows -> %s (jsonl)\n",
                cluster.cluster_timeline().size(), path);
  }
  if (const char* path = flag_str(argc, argv, "--cluster-trace-out")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << cluster.render_trace();
    std::printf("cluster trace   : %zu lanes -> %s (chrome://tracing)\n",
                cluster.report_count(), path);
  }
  return 0;
}

int cmd_world(int argc, char** argv) {
  sim::WorldConfig config;
  config.total_sites = flag_u32(argc, argv, "--sites", 5000);
  config.seed = flag_u64(argc, argv, "--seed", 42);
  const auto world = sim::World::generate(config);

  std::printf("world seed %llu\n",
              static_cast<unsigned long long>(config.seed));
  std::printf("  countries : %zu\n", world.countries().size());
  std::printf("  ASes      : %zu\n", world.ases().size());
  std::printf("  sites     : %zu\n", world.sites().size());
  std::printf("  devices   : %zu\n", world.devices().size());
  std::printf("  vantages  : %zu\n", world.vantages().size());
  std::printf("  wardriven access points: %zu\n", world.wardriving().size());

  std::uint64_t pool_users = 0, eui64 = 0;
  for (const auto& dev : world.devices()) {
    pool_users += dev.ntp.uses_pool;
    eui64 += dev.strategy == sim::IidStrategy::kEui64;
  }
  std::printf("  NTP pool users: %s, EUI-64 devices: %s\n",
              util::with_commas(pool_users).c_str(),
              util::with_commas(eui64).c_str());
  return 0;
}

int cmd_study(int argc, char** argv) {
  core::StudyConfig config = build_study_config(argc, argv);
  const bool collect_only = flag_set(argc, argv, "--collect-only");

  core::RunOptions options;
  options.sample_interval = flag_days(argc, argv, "--sample-days", 0);
  if (collect_only) {
    options.campaigns = false;
    options.backscan = false;
    options.analysis = false;
  }
  if (const std::uint32_t workers = flag_u32(argc, argv, "--dist-workers", 0);
      workers > 0) {
    dist::DistConfig dist_config;
    dist_config.workers = workers;
    dist_config.forced_kills = flag_u32(argc, argv, "--dist-kills", 0);
    dist_config.chunk_interval = flag_days(argc, argv, "--dist-chunk-days", 7);
    options.distributed = dist_config;
  }

  std::printf("running study: %u sites, %lld days, seed %llu\n",
              config.world.total_sites,
              static_cast<long long>(config.world.study_duration / util::kDay),
              static_cast<unsigned long long>(config.world.seed));
  core::Study study(config);
  const auto& r = study.run(std::move(options));

  std::printf("\nNTP corpus    : %s addresses (%s polls, %s answered)\n",
              util::with_commas(study.ntp_size()).c_str(),
              util::with_commas(r.polls_attempted).c_str(),
              util::with_commas(r.polls_answered).c_str());
  if (r.dist) {
    std::printf("distributed   : %u workers over %u subsets, %s leases, "
                "%s deaths, %s reassignments, %s stale uploads rejected\n",
                r.dist->workers, r.dist->subsets,
                util::with_commas(r.dist->leases_granted).c_str(),
                util::with_commas(r.dist->worker_deaths).c_str(),
                util::with_commas(r.dist->reassignments).c_str(),
                util::with_commas(r.dist->stale_uploads_rejected).c_str());
  }
  if (!collect_only) {
    const auto& ntp = r.analysis.table1.front();
    std::printf("table 1       : %s addresses in %s ASNs, %s /48s\n",
                util::with_commas(ntp.addresses).c_str(),
                util::with_commas(ntp.asns).c_str(),
                util::with_commas(ntp.slash48s).c_str());
    std::printf("IPv6 Hitlist  : %s addresses (%s aliased prefixes known)\n",
                util::with_commas(r.hitlist.corpus.size()).c_str(),
                util::with_commas(r.hitlist.aliased_prefixes.size()).c_str());
    std::printf("CAIDA /48     : %s addresses\n",
                util::with_commas(r.caida.corpus.size()).c_str());
    std::printf("backscan      : %s clients probed, %s responded\n",
                util::with_commas(r.backscan.clients_probed).c_str(),
                util::with_commas(r.backscan.clients_responded).c_str());

    std::printf("lifetimes     : %.1f%% of addresses seen once, %.2f%% live "
                "a month or more\n",
                100.0 * r.analysis.address_lifetimes.fraction_once,
                100.0 * r.analysis.address_lifetimes.fraction_month);
    // Stages sharing one corpus pass report that pass's wall time each, so
    // records are summed per stage (= kernel steps) but time is not.
    std::uint64_t analysis_steps = 0;
    for (const auto& stage : r.analysis.stage_stats) {
      analysis_steps += stage.records;
    }
    std::printf("analysis      : %zu stages, %s kernel steps on %u thread%s\n",
                r.analysis.stage_stats.size(),
                util::with_commas(analysis_steps).c_str(),
                config.analysis.resolved_threads(),
                config.analysis.resolved_threads() == 1 ? "" : "s");
  }

  // Out-of-core runs leave r.ntp empty. The analyses above streamed the
  // merged runs; the extras below (EUI-64 tracking, the /48 release)
  // still want an in-memory view, so collapse the runs once here.
  hitlist::Corpus collapsed(1);
  const hitlist::Corpus* ntp_corpus = &r.ntp;
  if (r.ntp_runs != nullptr) {
    const auto& stats = r.ntp_runs->stats();
    std::printf("out-of-core   : %s spills, %zu run file%s, %s bytes on "
                "disk\n",
                util::with_commas(stats.spills).c_str(),
                r.ntp_runs->run_count(),
                r.ntp_runs->run_count() == 1 ? "" : "s",
                util::with_commas(stats.disk_bytes).c_str());
    collapsed = r.ntp_runs->collapse();
    ntp_corpus = &collapsed;
  }

  analysis::Eui64Tracker tracker(*ntp_corpus, study.world());
  std::printf("privacy       : %s EUI-64 addresses, %s embedded MACs, %s "
              "trackable\n",
              util::with_commas(tracker.eui64_addresses()).c_str(),
              util::with_commas(tracker.unique_macs()).c_str(),
              util::with_commas(tracker.trackable_macs()).c_str());

  if (const char* path = flag_str(argc, argv, "--save-corpus")) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    const auto bytes = study.save_ntp(out);
    std::printf("corpus        : %s bytes -> %s (binary snapshot)\n",
                util::with_commas(bytes).c_str(), path);
  }
  if (const char* path = flag_str(argc, argv, "--frames-out")) {
    if (!r.dist) {
      std::fprintf(stderr,
                   "--frames-out needs --dist-workers N to produce a "
                   "frame log\n");
      return 1;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out.write(reinterpret_cast<const char*>(r.dist->frame_log.data()),
              static_cast<std::streamsize>(r.dist->frame_log.size()));
    std::printf("frames        : %s bytes -> %s (V6DIST01 log)\n",
                util::with_commas(r.dist->frame_log.size()).c_str(), path);
  }
  if (r.dist) {
    std::printf("cluster obs   : %zu worker reports aggregated\n",
                r.dist->cluster_obs.report_count());
    if (const int rc = write_cluster_artifacts(argc, argv, r.dist->cluster_obs);
        rc != 0) {
      return rc;
    }
  } else if (flag_str(argc, argv, "--cluster-metrics-out") != nullptr ||
             flag_str(argc, argv, "--cluster-timeline-out") != nullptr ||
             flag_str(argc, argv, "--cluster-trace-out") != nullptr) {
    std::fprintf(stderr,
                 "--cluster-*-out needs --dist-workers N to produce "
                 "cluster observability\n");
    return 1;
  }
  if (const char* path = flag_str(argc, argv, "--release")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    const auto rows = hitlist::aggregate_to_slash48(*ntp_corpus);
    hitlist::write_release(out, rows, /*min_count=*/3);
    std::printf("release       : %zu /48 rows -> %s (k-anonymity floor 3)\n",
                rows.size(), path);
  }
  if (const char* path = flag_str(argc, argv, "--metrics-out")) {
    const char* fmt_name = flag_str(argc, argv, "--metrics-format");
    const auto format = obs::parse_format(fmt_name ? fmt_name : "prom");
    if (!format) {
      std::fprintf(stderr, "unknown metrics format '%s' (prom|json)\n",
                   fmt_name);
      return 1;
    }
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << obs::render(r.metrics, *format);
    std::printf("metrics       : %zu samples, %zu spans -> %s (%.*s)\n",
                r.metrics.samples.size(), r.metrics.spans.size(), path,
                static_cast<int>(obs::format_suffix(*format).size()),
                obs::format_suffix(*format).data());
  }
  if (const char* path = flag_str(argc, argv, "--timeline-out")) {
    if (r.timeline.empty()) {
      std::fprintf(stderr,
                   "--timeline-out needs --sample-days D (D > 0) to "
                   "produce any windows\n");
      return 1;
    }
    const char* fmt_name = flag_str(argc, argv, "--timeline-format");
    const auto format =
        obs::parse_timeline_format(fmt_name ? fmt_name : "jsonl");
    if (!format) {
      std::fprintf(stderr, "unknown timeline format '%s' (jsonl|csv)\n",
                   fmt_name);
      return 1;
    }
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << obs::render_timeline(r.timeline, *format);
    std::printf("timeline      : %zu windows -> %s (%.*s)\n",
                r.timeline.size(), path,
                static_cast<int>(obs::timeline_format_suffix(*format).size()),
                obs::timeline_format_suffix(*format).data());
  }
  if (const char* path = flag_str(argc, argv, "--trace-out")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << obs::render_trace_events(r.metrics, r.timeline);
    std::printf("trace         : %zu spans, %zu windows -> %s "
                "(chrome://tracing)\n",
                r.metrics.spans.size(), r.timeline.size(), path);
  }
  return 0;
}

int cmd_coordinator(int argc, char** argv) {
  const char* dir = flag_str(argc, argv, "--dir");
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: v6pool_cli coordinator --dir D ...\n");
    return 1;
  }
  const core::StudyConfig study_config = build_study_config(argc, argv);
  dist::CoordinatorConfig config;
  config.dir = dir;
  config.workers = flag_u32(argc, argv, "--workers", 4);
  config.subsets = flag_u32(argc, argv, "--subsets", 0);
  config.chunk_interval = flag_days(argc, argv, "--chunk-days", 7);
  config.heartbeat_timeout_ms =
      flag_u32(argc, argv, "--heartbeat-timeout-ms", 10000);
  config.max_wall_ms = flag_u32(argc, argv, "--max-wall-ms", 600000);

  const util::SimTime start = study_config.world.study_start;
  const util::SimTime end = start + study_config.world.study_duration;
  std::printf("coordinator: %u workers, dir %s, window [%lld, %lld)\n",
              config.workers, dir, static_cast<long long>(start),
              static_cast<long long>(end));
  dist::Coordinator coordinator(config);
  const dist::CoordinatorResult result = coordinator.run(start, end);

  std::printf("merged corpus : %s addresses (%s polls, %s answered)\n",
              util::with_commas(result.corpus.size()).c_str(),
              util::with_commas(result.polls_attempted).c_str(),
              util::with_commas(result.polls_answered).c_str());
  std::printf("fleet         : %s leases, %s uploads, %s deaths, "
              "%s reassignments, %s stale rejected\n",
              util::with_commas(result.leases_granted).c_str(),
              util::with_commas(result.checkpoints_uploaded).c_str(),
              util::with_commas(result.worker_deaths).c_str(),
              util::with_commas(result.reassignments).c_str(),
              util::with_commas(result.stale_uploads_rejected).c_str());
  std::printf("cluster obs   : %zu worker reports aggregated\n",
              result.cluster_obs.report_count());
  if (const int rc = write_cluster_artifacts(argc, argv, result.cluster_obs);
      rc != 0) {
    return rc;
  }
  if (const char* path = flag_str(argc, argv, "--save-corpus")) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    const auto bytes = hitlist::save_corpus(out, result.corpus);
    std::printf("corpus        : %s bytes -> %s (binary snapshot)\n",
                util::with_commas(bytes).c_str(), path);
  }
  return 0;
}

int cmd_worker(int argc, char** argv) {
  const char* dir = flag_str(argc, argv, "--dir");
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: v6pool_cli worker --dir D --id I ...\n");
    return 1;
  }
  const core::StudyConfig study_config = build_study_config(argc, argv);
  // Constructing the Study builds the identical world / data plane / DNS
  // stack every other process of this run builds — the worker only ever
  // reads from it under lease.
  core::Study study(study_config);

  dist::NodeEnv env;
  env.world = &study.world();
  env.plane = &study.plane();
  env.dns = &study.pool_dns();
  env.collector = study.config().collector;
  env.start = study_config.world.study_start;
  env.end = env.start + study_config.world.study_duration;

  dist::WorkerConfig config;
  config.dir = dir;
  config.id = flag_u32(argc, argv, "--id", 1);
  config.chunk_delay_ms = flag_u32(argc, argv, "--chunk-delay-ms", 0);
  config.max_idle_ms = flag_u32(argc, argv, "--max-idle-ms", 600000);

  std::printf("worker %u: dir %s\n", config.id, dir);
  dist::Worker worker(env, config);
  worker.run();
  std::printf("worker %u: shutdown\n", config.id);
  return 0;
}

// "aa:bb:cc", "aa-bb-cc", or bare hex "aabbcc".
std::optional<net::Oui> parse_oui(std::string_view text) {
  std::string hex;
  for (const char c : text) {
    if (c == ':' || c == '-') continue;
    hex.push_back(c);
  }
  const auto value = util::parse_hex_u64(hex);
  if (!value || *value > 0xffffff) return std::nullopt;
  return net::Oui(static_cast<std::uint32_t>(*value));
}

// Answers one query against the served snapshot, printing one line.
// Returns false when the argument does not parse.
bool answer_query(const serve::QueryService& service, std::string_view kind,
                  const char* arg) {
  if (kind == "point") {
    const auto addr = net::Ipv6Address::parse(arg);
    if (!addr) return false;
    if (const auto rec = service.point(*addr)) {
      std::printf("point %s known count=%u first=%u last=%u vantages=%#x\n",
                  addr->to_string().c_str(), rec->count, rec->first_seen,
                  rec->last_seen, rec->vantage_mask);
    } else {
      std::printf("point %s unknown\n", addr->to_string().c_str());
    }
    return true;
  }
  if (kind == "density48") {
    const auto addr = net::Ipv6Address::parse(arg);
    if (!addr) return false;
    std::printf("density48 %s %llu\n",
                net::slash48_of(*addr).to_string().c_str(),
                static_cast<unsigned long long>(
                    service.slash48_density(*addr)));
    return true;
  }
  if (kind == "entropy64") {
    const auto addr = net::Ipv6Address::parse(arg);
    if (!addr) return false;
    const serve::Slash64Summary sum = service.slash64_entropy(*addr);
    std::printf(
        "entropy64 %s addresses=%llu low=%llu medium=%llu high=%llu "
        "eui64=%llu dominant=%s\n",
        net::slash64_of(*addr).to_string().c_str(),
        static_cast<unsigned long long>(sum.addresses),
        static_cast<unsigned long long>(sum.low),
        static_cast<unsigned long long>(sum.medium),
        static_cast<unsigned long long>(sum.high),
        static_cast<unsigned long long>(sum.eui64),
        sum.addresses == 0 ? "none" : net::to_string(sum.dominant()));
    return true;
  }
  if (kind == "oui") {
    const auto oui = parse_oui(arg);
    if (!oui) return false;
    const serve::OuiRisk risk = service.oui_risk(*oui);
    std::printf(
        "oui %s eui64_addresses=%llu unique_macs=%llu trackable_macs=%llu "
        "mac_slash64_pairs=%llu\n",
        oui->to_string().c_str(),
        static_cast<unsigned long long>(risk.eui64_addresses),
        static_cast<unsigned long long>(risk.unique_macs),
        static_cast<unsigned long long>(risk.trackable_macs),
        static_cast<unsigned long long>(risk.mac_slash64_pairs));
    return true;
  }
  return false;
}

// Runs every --addr/--p48/--p64/--oui flag and --queries FILE line (format:
// `point|density48|entropy64|oui ARG`, '#' comments) against the service.
int answer_queries(const serve::QueryService& service, int argc, char** argv) {
  static constexpr std::pair<const char*, const char*> kFlags[] = {
      {"--addr", "point"},
      {"--p48", "density48"},
      {"--p64", "entropy64"},
      {"--oui", "oui"},
  };
  for (int i = 1; i + 1 < argc; ++i) {
    for (const auto& [flag, kind] : kFlags) {
      if (std::strcmp(argv[i], flag) != 0) continue;
      if (!answer_query(service, kind, argv[i + 1])) {
        die_flag(flag, argv[i + 1], "expected a parseable query argument");
      }
    }
  }
  if (const char* path = flag_str(argc, argv, "--queries")) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string kind, arg;
      fields >> kind >> arg;
      if (!answer_query(service, kind, arg.c_str())) {
        std::fprintf(stderr, "%s:%zu: bad query line '%s'\n", path, lineno,
                     line.c_str());
        return 2;
      }
    }
  }
  return 0;
}

void print_snapshot_banner(const serve::Snapshot& snap) {
  std::printf("epoch %llu  as_of day %lld  records %s  /48s %zu  /64s %zu  "
              "OUIs %zu  digest %016llx\n",
              static_cast<unsigned long long>(snap.epoch()),
              static_cast<long long>(snap.as_of() / util::kDay),
              util::with_commas(snap.records()).c_str(), snap.slash48_count(),
              snap.slash64_count(), snap.oui_count(),
              static_cast<unsigned long long>(snap.digest()));
}

int cmd_query(int argc, char** argv) {
  const char* path = flag_str(argc, argv, "--corpus");
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: v6pool_cli query --corpus FILE [--addr A] [--p48 A] "
                 "[--p64 A] [--oui O] [--queries FILE]\n");
    return 1;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  hitlist::Corpus corpus(1);
  try {
    corpus = hitlist::load_corpus(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  }
  corpus.canonicalize();
  serve::QueryService service;
  const auto snap = service.publish(analysis::make_source(corpus), 0);
  print_snapshot_banner(*snap);
  return answer_queries(service, argc, argv);
}

int cmd_serve(int argc, char** argv) {
  core::StudyConfig config = build_study_config(argc, argv);
  core::RunOptions options;
  options.campaigns = false;
  options.backscan = false;
  options.analysis = false;
  options.serve.enabled = true;
  options.serve.epoch_interval = flag_days(argc, argv, "--epoch-days", 30);
  options.serve.retain_epochs = static_cast<std::size_t>(
      flag_u64(argc, argv, "--retain-epochs", 8, 1ull << 20));

  std::printf("serving study: %u sites, %lld days, seed %llu, epoch every "
              "%lld days (retain %zu)\n",
              config.world.total_sites,
              static_cast<long long>(config.world.study_duration / util::kDay),
              static_cast<unsigned long long>(config.world.seed),
              static_cast<long long>(options.serve.epoch_interval / util::kDay),
              options.serve.retain_epochs);
  core::Study study(config);
  serve::QueryService& service = study.query_service();
  study.run(std::move(options));

  for (const auto& snap : service.retained()) print_snapshot_banner(*snap);
  return answer_queries(service, argc, argv);
}

// One per-kind serve-latency summary object for the run report:
// {"count":N,"sum_us":X,"p50_us":X|null,"p90_us":X|null,"p99_us":X|null}.
// Percentiles come from obs::summarize_histogram over the bucket shape;
// null (valid JSON, accepted by lint_report) when the kind never ran.
void append_latency_summary(std::string& out, const obs::Snapshot& metrics,
                            serve::QueryKind kind) {
  const char* name = serve::to_string(kind);
  const obs::Labels want{{"kind", name}};
  const obs::MetricSample* found = nullptr;
  for (const obs::MetricSample& s : metrics.samples) {
    if (s.type == obs::MetricType::kHistogram &&
        s.name == "v6_serve_latency_us" && s.labels == want) {
      found = &s;
      break;
    }
  }
  obs::HistogramSummary summary;
  if (found != nullptr) summary = obs::summarize_histogram(found->histogram);
  out += '"';
  out += name;
  out += "\":{\"count\":";
  out += std::to_string(summary.count);
  out += ",\"sum_us\":";
  out += obs::detail::format_double(summary.sum);
  const auto pct = [&out](const char* key,
                          const std::optional<double>& value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += value ? obs::detail::format_double(*value) : "null";
  };
  pct("p50_us", summary.p50);
  pct("p90_us", summary.p90);
  pct("p99_us", summary.p99);
  out += '}';
}

// obs-report: run stage 1 with serving + timeline sampling on, drive a
// deterministic query workload so the serve-latency histograms hold real
// samples, and emit the unified run-report JSON artifact (validated by
// obs::lint_report before it is written — the CLI never ships a report
// its own linter rejects).
int cmd_obs_report(int argc, char** argv) {
  core::StudyConfig config = build_study_config(argc, argv);
  core::RunOptions options;
  options.campaigns = false;
  options.backscan = false;
  options.analysis = false;
  options.serve.enabled = true;
  options.serve.epoch_interval = flag_days(argc, argv, "--epoch-days", 0);
  options.serve.retain_epochs = static_cast<std::size_t>(
      flag_u64(argc, argv, "--retain-epochs", 8, 1ull << 20));
  options.sample_interval = flag_days(argc, argv, "--sample-days", 7);
  if (const std::uint32_t workers = flag_u32(argc, argv, "--dist-workers", 0);
      workers > 0) {
    dist::DistConfig dist_config;
    dist_config.workers = workers;
    dist_config.forced_kills = flag_u32(argc, argv, "--dist-kills", 0);
    dist_config.chunk_interval = flag_days(argc, argv, "--dist-chunk-days", 7);
    options.distributed = dist_config;
  }

  const std::uint32_t dist_workers =
      options.distributed ? options.distributed->workers : 0;
  const std::uint32_t dist_kills =
      options.distributed ? options.distributed->forced_kills : 0;

  std::printf("obs-report: %u sites, %lld days, seed %llu\n",
              config.world.total_sites,
              static_cast<long long>(config.world.study_duration / util::kDay),
              static_cast<unsigned long long>(config.world.seed));
  core::Study study(config);
  serve::QueryService& service = study.query_service();
  const auto& r = study.run(std::move(options));

  // Deterministic query workload: the first --query-count canonicalized
  // corpus addresses, each driven through all four query kinds (the OUI
  // is derived from the address's would-be EUI-64 bytes). The targets are
  // a pure function of the corpus; only the measured latencies are
  // wall-clock, and those sit outside the determinism gates by design.
  const std::uint64_t query_count =
      flag_u64(argc, argv, "--query-count", 64, 1ull << 20);
  hitlist::Corpus collapsed(1);
  const hitlist::Corpus* ntp = &r.ntp;
  if (r.ntp_runs != nullptr) {
    collapsed = r.ntp_runs->collapse();
    ntp = &collapsed;
  }
  std::vector<net::Ipv6Address> targets;
  ntp->for_each([&](const hitlist::AddressRecord& rec) {
    if (targets.size() < query_count) targets.push_back(rec.address);
  });
  for (const net::Ipv6Address& a : targets) {
    (void)service.point(a);
    (void)service.slash48_density(a);
    (void)service.slash64_entropy(a);
    const auto& b = a.bytes();
    (void)service.oui_risk(net::Oui(
        (static_cast<std::uint32_t>(b[8] ^ 0x02) << 16) |
        (static_cast<std::uint32_t>(b[9]) << 8) | b[10]));
  }

  // Re-snapshot AFTER the workload: StudyResults::metrics was folded when
  // run() returned, before any latency sample existed.
  const obs::Snapshot metrics = study.metrics_registry().snapshot();

  const char* timeline_path = flag_str(argc, argv, "--timeline-out");
  if (timeline_path != nullptr) {
    if (r.timeline.empty()) {
      std::fprintf(stderr,
                   "--timeline-out needs --sample-days D (D > 0) to "
                   "produce any windows\n");
      return 1;
    }
    std::ofstream out(timeline_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", timeline_path);
      return 1;
    }
    out << obs::render_timeline(r.timeline, obs::TimelineFormat::kJsonl);
  }

  const std::uint64_t days =
      static_cast<std::uint64_t>(config.world.study_duration / util::kDay);
  const std::uint64_t threads = flag_u64(argc, argv, "--threads", 1,
                                         std::numeric_limits<std::uint32_t>::max());
  const std::string config_text =
      "sites=" + std::to_string(config.world.total_sites) +
      ",days=" + std::to_string(days) +
      ",seed=" + std::to_string(config.world.seed) +
      ",threads=" + std::to_string(threads) +
      ",dist_workers=" + std::to_string(dist_workers) +
      ",dist_kills=" + std::to_string(dist_kills);
  char digest_buf[32];
  std::snprintf(digest_buf, sizeof digest_buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(config_text)));

  std::string json = "{\"report\":\"v6pool_run_report\",\"version\":1";
  json += ",\"config\":{\"sites\":" + std::to_string(config.world.total_sites);
  json += ",\"days\":" + std::to_string(days);
  json += ",\"seed\":" + std::to_string(config.world.seed);
  json += ",\"threads\":" + std::to_string(threads);
  json += ",\"digest\":\"";
  json += digest_buf;
  json += "\"}";
  json += ",\"kernel_backend\":\"";
  json += kernels::to_string(kernels::active_backend());
  json += "\"";
  json += ",\"metrics\":{\"polls_attempted\":" +
          std::to_string(r.polls_attempted);
  json += ",\"polls_answered\":" + std::to_string(r.polls_answered);
  json += ",\"records\":" + std::to_string(study.ntp_size());
  json += ",\"samples\":" + std::to_string(metrics.samples.size()) + "}";
  json += ",\"serve_latency\":{";
  static constexpr serve::QueryKind kKinds[] = {
      serve::QueryKind::kPoint, serve::QueryKind::kDensity48,
      serve::QueryKind::kEntropy64, serve::QueryKind::kOuiRisk};
  bool first = true;
  for (const serve::QueryKind kind : kKinds) {
    if (!first) json += ',';
    first = false;
    append_latency_summary(json, metrics, kind);
  }
  json += "}";
  json += ",\"epochs\":[";
  first = true;
  for (const auto& snap : service.retained()) {
    if (!first) json += ',';
    first = false;
    char epoch_digest[32];
    std::snprintf(epoch_digest, sizeof epoch_digest, "%016llx",
                  static_cast<unsigned long long>(snap->digest()));
    json += "{\"epoch\":" + std::to_string(snap->epoch());
    json += ",\"as_of_day\":" +
            std::to_string(static_cast<long long>(snap->as_of() / util::kDay));
    json += ",\"records\":" + std::to_string(snap->records());
    json += ",\"digest\":\"";
    json += epoch_digest;
    json += "\"}";
  }
  json += "]";
  json += ",\"timeline\":{\"windows\":" + std::to_string(r.timeline.size());
  json += ",\"path\":";
  if (timeline_path != nullptr) {
    obs::detail::append_json_string(json, timeline_path);
  } else {
    json += "null";
  }
  json += "}";
  if (r.dist) {
    json += ",\"dist\":{\"workers\":" + std::to_string(r.dist->workers);
    json += ",\"subsets\":" + std::to_string(r.dist->subsets);
    json += ",\"obs_reports\":" +
            std::to_string(r.dist->cluster_obs.report_count());
    json += ",\"leases\":" + std::to_string(r.dist->leases_granted);
    json += ",\"worker_deaths\":" + std::to_string(r.dist->worker_deaths);
    json += "}";
  } else {
    json += ",\"dist\":null";
  }
  json += "}\n";

  if (const auto problem = obs::lint_report(json)) {
    std::fprintf(stderr, "internal error: generated report fails lint: %s\n",
                 problem->c_str());
    return 1;
  }
  if (const char* path = flag_str(argc, argv, "--out")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << json;
    std::printf("run report    : %zu bytes, %zu queries -> %s (json)\n",
                json.size(), targets.size() * 4, path);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (r.dist) {
    if (const int rc = write_cluster_artifacts(argc, argv, r.dist->cluster_obs);
        rc != 0) {
      return rc;
    }
  }
  return 0;
}

// Shared shape of the lint subcommands: slurp FILE, run `lint`,
// exit 0 iff it reports no problem.
int lint_file(int argc, char** argv, const char* subcommand,
              std::optional<std::string> (*lint)(std::string_view)) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: v6pool_cli %s FILE\n", subcommand);
    return 1;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (const auto problem = lint(buffer.str())) {
    std::fprintf(stderr, "%s: %s\n", argv[2], problem->c_str());
    return 1;
  }
  std::printf("%s: OK\n", argv[2]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  apply_kernels_flag(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "world") == 0) {
    return cmd_world(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "study") == 0) {
    return cmd_study(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "query") == 0) {
    return cmd_query(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return cmd_serve(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "lint-metrics") == 0) {
    return lint_file(argc, argv, "lint-metrics", obs::lint_prometheus);
  }
  if (argc >= 2 && std::strcmp(argv[1], "lint-timeline") == 0) {
    return lint_file(argc, argv, "lint-timeline", obs::lint_timeline_jsonl);
  }
  if (argc >= 2 && std::strcmp(argv[1], "lint-trace") == 0) {
    return lint_file(argc, argv, "lint-trace", obs::lint_trace_events);
  }
  if (argc >= 2 && std::strcmp(argv[1], "lint-dist") == 0) {
    return lint_file(argc, argv, "lint-dist", dist::lint_dist_frames);
  }
  if (argc >= 2 && std::strcmp(argv[1], "lint-report") == 0) {
    return lint_file(argc, argv, "lint-report", obs::lint_report);
  }
  if (argc >= 2 && std::strcmp(argv[1], "obs-report") == 0) {
    return cmd_obs_report(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "coordinator") == 0) {
    return cmd_coordinator(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "worker") == 0) {
    return cmd_worker(argc, argv);
  }
  std::printf(
      "usage:\n"
      "  v6pool_cli world [--sites N] [--seed S]\n"
      "  every subcommand also takes --kernels scalar|auto (batch-kernel "
      "backend; default auto = best the CPU supports)\n"
      "  v6pool_cli study [--sites N] [--days D] [--seed S] "
      "[--memory-budget-mb M] [--spill-dir DIR] "
      "[--release FILE] [--save-corpus FILE] [--metrics-out FILE "
      "[--metrics-format prom|json]] [--sample-days D] "
      "[--timeline-out FILE [--timeline-format jsonl|csv]] "
      "[--trace-out FILE] [--collect-only] [--dist-workers N "
      "[--dist-kills K] [--dist-chunk-days C] [--frames-out FILE] "
      "[--cluster-metrics-out FILE] [--cluster-timeline-out FILE] "
      "[--cluster-trace-out FILE]]\n"
      "  v6pool_cli obs-report [--sites N] [--days D] [--seed S] "
      "[--threads T] [--epoch-days E] [--sample-days D] [--query-count Q] "
      "[--out FILE] [--timeline-out FILE] [--dist-workers N "
      "[--dist-kills K] [--cluster-metrics-out FILE] "
      "[--cluster-timeline-out FILE] [--cluster-trace-out FILE]]\n"
      "  v6pool_cli query --corpus FILE [--addr A] [--p48 A] [--p64 A] "
      "[--oui O] [--queries FILE]\n"
      "  v6pool_cli serve [--sites N] [--days D] [--seed S] [--threads T] "
      "[--memory-budget-mb M] [--epoch-days E] [--retain-epochs R] "
      "[--addr A] [--p48 A] [--p64 A] [--oui O] [--queries FILE]\n"
      "  v6pool_cli coordinator --dir D [--workers N] [--subsets S] "
      "[--chunk-days C] [--heartbeat-timeout-ms MS] [--save-corpus FILE] "
      "[--sites N] [--days D] [--seed S]\n"
      "  v6pool_cli worker --dir D --id I [--chunk-delay-ms MS] "
      "[--sites N] [--days D] [--seed S]\n"
      "  v6pool_cli lint-metrics FILE\n"
      "  v6pool_cli lint-timeline FILE\n"
      "  v6pool_cli lint-trace FILE\n"
      "  v6pool_cli lint-dist FILE\n"
      "  v6pool_cli lint-report FILE\n");
  return argc >= 2 ? 1 : 0;
}
