#include "analysis/scan_source.h"

#include "hitlist/tiered_corpus.h"

namespace v6::analysis {

ScanSource make_source(const hitlist::TieredCorpus& runs) {
  ScanSource src;
  // Both calls populate lazy caches inside `runs`; doing it here keeps
  // the concurrent visit_blocks() path read-only.
  src.span = runs.segment_bounds().size();
  src.records = runs.merged_size();
  src.visit_blocks = [&runs](std::size_t begin, std::size_t end,
                             const ScanSource::BlockFn& fn) {
    runs.scan_segment_blocks(begin, end, fn);
  };
  // No `contains`: a point probe costs a block decode per run. Callers
  // invert the membership scan instead (see summarize_dataset).
  src.finalize();
  return src;
}

}  // namespace v6::analysis
