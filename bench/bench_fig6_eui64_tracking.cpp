// Figure 6 + §5.2 — tracking EUI-64 devices: (a) CDF of EUI-64 IID
// lifetimes, (b) CCDF of the number of /64s each EUI-64 IID appears in,
// and the five-way trackability classification (mostly static 86%, prefix
// reassignment 8%, changing providers 5%, user movement 0.44%, MAC reuse
// 0.01% — of the 8.7% of MACs seen in >= 2 /64s).
#include "analysis/bad_apple.h"
#include "analysis/eui64_tracking.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 6 / §5.2: EUI-64 tracking", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& r = study.results();

  analysis::Eui64Tracker tracker(r.ntp, study.world());

  // Fig 6a: lifetime CDF (seconds).
  const auto lifetimes = tracker.lifetime_distribution();
  bench::print_cdf("Fig 6a series: EUI-64 IID lifetime CDF (seconds)",
                   lifetimes);

  // Fig 6b: CCDF of /64 counts.
  const std::vector<std::uint32_t> points = {0,  1,  2,   5,   10,
                                             20, 50, 100, 200, 500};
  std::printf("\n# Fig 6b series: CCDF of /64s per EUI-64 IID\n");
  std::printf("slash64s,ccdf\n");
  for (const auto& [n, frac] : tracker.slash64_ccdf(points)) {
    std::printf("%u,%.6f\n", n, frac);
  }

  const double trackable_share =
      static_cast<double>(tracker.trackable_macs()) /
      static_cast<double>(std::max<std::uint64_t>(1, tracker.unique_macs()));

  std::printf("\nClassification of trackable MACs (>= 2 /64s):\n");
  util::TablePrinter table({"class", "MACs", "share", "paper"});
  const char* paper_share[] = {"-", "86%", "8%", "0.01%", "5%", "0.44%"};
  std::uint64_t trackable = tracker.trackable_macs();
  for (const auto& [cls, count] : tracker.class_counts()) {
    table.add_row(
        {to_string(cls), util::with_commas(count),
         util::percent(static_cast<double>(count) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, trackable))),
         paper_share[static_cast<std::size_t>(cls)]});
  }
  table.print(std::cout);

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("MACs in >= 2 /64s", "8.7%",
                 util::percent(trackable_share));
  comparison.row(
      "EUI-64 IIDs observed once", "~55% (vs 60-70% of all IIDs)",
      lifetimes.empty() ? "-" : util::percent(lifetimes.cdf(0.0)));
  comparison.row(
      "EUI-64 IIDs alive >= 1 week", "fat tail (>= low-entropy IIDs)",
      lifetimes.empty()
          ? "-"
          : util::percent(1.0 - lifetimes.cdf(
                                    static_cast<double>(util::kWeek) - 1)));
  const auto apples = analysis::bad_apple_linkage(r.ntp, tracker);
  comparison.row("one-bad-apple: co-tenant addresses linked",
                 "(ref [66], Saidi et al.)",
                 util::with_commas(apples.linked_addresses));
  comparison.row("households stitched across rotations",
                 "(ref [66])",
                 util::with_commas(
                     apples.households_stitched_across_prefixes));
  comparison.print();
  return 0;
}
