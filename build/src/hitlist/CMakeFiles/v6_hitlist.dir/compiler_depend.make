# Empty compiler generated dependencies file for v6_hitlist.
# This may be replaced when dependencies are built.
