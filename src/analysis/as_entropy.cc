#include "analysis/as_entropy.h"

#include <algorithm>
#include <unordered_map>

#include "kernels/batch.h"
#include "net/entropy.h"

namespace v6::analysis {

namespace {
// Records per batch entropy call.
constexpr std::size_t kChunk = 1024;
}  // namespace

std::vector<AsEntropyProfile> top_as_entropy_profiles(
    const ScanSource& source, const sim::World& world, std::size_t n,
    util::SimTime window_start, util::SimTime window_end,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  using PerAsSamples = std::unordered_map<std::uint32_t, std::vector<double>>;
  // Appending shard vectors in ascending shard order keeps each AS's
  // sample sequence equal to the serial visit order, so the resulting
  // distributions are bit-identical at any thread count.
  auto samples = scan_corpus_blocks<PerAsSamples>(
      source, config, "top_as_entropy_profiles",
      [] { return PerAsSamples(); },
      [&](PerAsSamples& m, std::span<const hitlist::AddressRecord> block) {
        // Gate first (window + AS attribution), then batch the entropy
        // for the whole chunk and keep only gated-in samples; entropies
        // of skipped records are computed-but-unused, never tallied.
        std::uint64_t iids[kChunk];
        double entropies[kChunk];
        std::uint32_t as_of[kChunk];
        bool eligible[kChunk];
        for (std::size_t base = 0; base < block.size(); base += kChunk) {
          const std::size_t n = std::min(kChunk, block.size() - base);
          kernels::extract_iid_batch(
              reinterpret_cast<const std::uint8_t*>(block.data() + base),
              sizeof(hitlist::AddressRecord), n, iids);
          for (std::size_t i = 0; i < n; ++i) {
            const hitlist::AddressRecord& rec = block[base + i];
            eligible[i] = false;
            if (static_cast<util::SimTime>(rec.first_seen) >= window_end ||
                static_cast<util::SimTime>(rec.last_seen) < window_start) {
              continue;
            }
            const auto as_index = world.as_index_of(rec.address);
            if (!as_index) continue;
            eligible[i] = true;
            as_of[i] = *as_index;
          }
          kernels::iid_entropy_batch(iids, n, entropies);
          for (std::size_t i = 0; i < n; ++i) {
            if (eligible[i]) m[as_of[i]].push_back(entropies[i]);
          }
        }
      },
      [](PerAsSamples& into, PerAsSamples&& from) {
        for (auto& [as_index, entropies] : from) {
          auto& dst = into[as_index];
          dst.insert(dst.end(), entropies.begin(), entropies.end());
        }
      },
      stats);

  std::vector<AsEntropyProfile> profiles;
  profiles.reserve(samples.size());
  for (auto& [as_index, entropies] : samples) {
    AsEntropyProfile p;
    p.as_index = as_index;
    p.asn = world.ases()[as_index].asn;
    p.name = world.ases()[as_index].name;
    p.addresses = entropies.size();
    p.entropy = util::EmpiricalDistribution(std::move(entropies));
    profiles.push_back(std::move(p));
  }
  // Descending by address count, ties broken by ascending ASN (and
  // as_index as a final guard): sorting by count alone left equal-sized
  // ASes in unordered_map iteration order — nondeterministic across
  // runs/platforms, which made Fig 4 output unstable.
  std::sort(profiles.begin(), profiles.end(),
            [](const AsEntropyProfile& a, const AsEntropyProfile& b) {
              if (a.addresses != b.addresses) return a.addresses > b.addresses;
              if (a.asn != b.asn) return a.asn < b.asn;
              return a.as_index < b.as_index;
            });
  if (profiles.size() > n) profiles.resize(n);
  return profiles;
}

std::vector<AsEntropyProfile> top_as_entropy_profiles(
    const hitlist::Corpus& corpus, const sim::World& world, std::size_t n,
    util::SimTime window_start, util::SimTime window_end,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  return top_as_entropy_profiles(make_source(corpus), world, n, window_start,
                                 window_end, config, stats);
}

}  // namespace v6::analysis
