// RFC 1071 Internet checksum and the IPv6 pseudo-header variant used by
// ICMPv6 (RFC 4443 §2.3) and UDP over IPv6 (RFC 8200 §8.1).
#pragma once

#include <cstdint>
#include <span>

#include "net/ipv6.h"

namespace v6::proto {

// One's-complement sum of 16-bit words (odd trailing byte padded with zero),
// final complement applied. Returns the checksum in host order.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

// Checksum of `payload` prefixed by the IPv6 pseudo-header
// (src, dst, upper-layer length, next header).
std::uint16_t pseudo_header_checksum(const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst,
                                     std::uint8_t next_header,
                                     std::span<const std::uint8_t> payload)
    noexcept;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), as used by the
// corpus snapshot v2 per-section integrity trailers. `seed` lets callers
// chain sections: crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

}  // namespace v6::proto
