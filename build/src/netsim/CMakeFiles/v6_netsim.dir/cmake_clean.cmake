file(REMOVE_RECURSE
  "CMakeFiles/v6_netsim.dir/data_plane.cc.o"
  "CMakeFiles/v6_netsim.dir/data_plane.cc.o.d"
  "CMakeFiles/v6_netsim.dir/pool_dns.cc.o"
  "CMakeFiles/v6_netsim.dir/pool_dns.cc.o.d"
  "CMakeFiles/v6_netsim.dir/topology.cc.o"
  "CMakeFiles/v6_netsim.dir/topology.cc.o.d"
  "libv6_netsim.a"
  "libv6_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
