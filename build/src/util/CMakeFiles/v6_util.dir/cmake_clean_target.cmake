file(REMOVE_RECURSE
  "libv6_util.a"
)
