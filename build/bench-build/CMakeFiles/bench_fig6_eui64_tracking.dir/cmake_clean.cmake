file(REMOVE_RECURSE
  "../bench/bench_fig6_eui64_tracking"
  "../bench/bench_fig6_eui64_tracking.pdb"
  "CMakeFiles/bench_fig6_eui64_tracking.dir/bench_fig6_eui64_tracking.cpp.o"
  "CMakeFiles/bench_fig6_eui64_tracking.dir/bench_fig6_eui64_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_eui64_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
