file(REMOVE_RECURSE
  "CMakeFiles/v6_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/v6_bench_common.dir/bench_common.cc.o.d"
  "libv6_bench_common.a"
  "libv6_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
