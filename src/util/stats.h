// Small statistics toolkit used by the analysis layer: running moments,
// empirical CDF/CCDF construction, histograms, and quantiles.
//
// The paper's figures are all CDFs/CCDFs over large sample sets; the types
// here build those curves once and let benches print them as (x, F(x)) rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace v6::util {

// Welford-style online mean/variance with min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Empirical distribution over a sample set. Samples are accumulated with
// add() and the curve is finalized on first query (lazily sorts).
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double x);
  void add_n(double x, std::size_t n);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  // Fraction of samples <= x.
  double cdf(double x) const;
  // Fraction of samples > x.
  double ccdf(double x) const { return 1.0 - cdf(x); }
  // Smallest sample s such that cdf(s) >= q, for q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double mean() const;
  double min() const;
  double max() const;

  // Evaluates the CDF at `points` evenly spaced x values across
  // [min, max]; returns (x, cdf(x)) pairs. Useful for printing figures.
  std::vector<std::pair<double, double>> cdf_curve(std::size_t points) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;
  // Fraction of all weight at or below the upper edge of bucket i.
  double cumulative_fraction(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Returns evenly spaced values [lo..hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace v6::util
