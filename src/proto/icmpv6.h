// ICMPv6 (RFC 4443) messages used by the scanners: Echo Request/Reply for
// ZMap6-style probing, Time Exceeded for Yarrp-style traceroute, and
// Destination Unreachable for filtered targets.
//
// Encoding computes the pseudo-header checksum; decoding verifies it, so a
// corrupted datagram fails to parse exactly as it would be dropped by a real
// stack.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "proto/buffer.h"

namespace v6::proto {

enum class Icmpv6Type : std::uint8_t {
  kDestinationUnreachable = 1,
  kTimeExceeded = 3,
  kEchoRequest = 128,
  kEchoReply = 129,
};

struct Icmpv6Message {
  Icmpv6Type type = Icmpv6Type::kEchoRequest;
  std::uint8_t code = 0;
  // Meaning depends on type: identifier<<16 | sequence for echo, unused for
  // time-exceeded/unreachable.
  std::uint32_t body = 0;
  // Echo payload or the invoking-packet excerpt.
  std::vector<std::uint8_t> payload;

  std::uint16_t identifier() const noexcept {
    return static_cast<std::uint16_t>(body >> 16);
  }
  std::uint16_t sequence() const noexcept {
    return static_cast<std::uint16_t>(body);
  }

  friend bool operator==(const Icmpv6Message&, const Icmpv6Message&) = default;
};

// Serializes with a valid checksum for the given src/dst pair.
std::vector<std::uint8_t> encode_icmpv6(const Icmpv6Message& msg,
                                        const net::Ipv6Address& src,
                                        const net::Ipv6Address& dst);

// Parses and verifies the checksum; nullopt on truncation or bad checksum.
std::optional<Icmpv6Message> decode_icmpv6(std::span<const std::uint8_t> data,
                                           const net::Ipv6Address& src,
                                           const net::Ipv6Address& dst);

// Convenience constructors.
Icmpv6Message make_echo_request(std::uint16_t identifier,
                                std::uint16_t sequence,
                                std::vector<std::uint8_t> payload = {});
Icmpv6Message make_echo_reply(const Icmpv6Message& request);
Icmpv6Message make_time_exceeded(std::vector<std::uint8_t> invoking_excerpt);

}  // namespace v6::proto
