#include "util/rng.h"

#include <cmath>

namespace v6::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the full 256-bit state from splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  if (bound == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = span == 0 ? next() : bounded(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF; 1-u avoids log(0).
  return -mean * std::log(1.0 - uniform());
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0;
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (draw < w) return i;
    draw -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  return Rng(next() ^ mix64(tag));
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  if (cdf_.empty()) return 0;
  const double u = rng.uniform();
  // Binary search for the first cumulative weight >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace v6::util
