#include "scan/tga.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_set>

namespace v6::scan {

namespace {

// Nibble i (0 = most significant) of an address.
int nibble_at(const net::Ipv6Address& a, int i) {
  const std::uint64_t half = i < 16 ? a.hi64() : a.lo64();
  const int shift = 60 - 4 * (i % 16);
  return static_cast<int>((half >> shift) & 0xf);
}

// Writes nibble i into (hi, lo).
void set_nibble(std::uint64_t& hi, std::uint64_t& lo, int i, int value) {
  const int shift = 60 - 4 * (i % 16);
  std::uint64_t& half = i < 16 ? hi : lo;
  half = (half & ~(std::uint64_t{0xf} << shift)) |
         (static_cast<std::uint64_t>(value & 0xf) << shift);
}

// Right-aligned value of nibbles [first, first + count) of an address.
std::uint64_t slice_value(const net::Ipv6Address& a, int first, int count) {
  std::uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    value = (value << 4) | static_cast<std::uint64_t>(nibble_at(a, first + i));
  }
  return value;
}

}  // namespace

// --------------------------------------------------------------- Entropy/IP

void EntropyIpModel::train(std::span<const net::Ipv6Address> addresses) {
  if (addresses.empty()) {
    throw std::invalid_argument("EntropyIpModel::train on empty set");
  }
  segments_.clear();

  // Per-nibble normalized entropy across the training set.
  std::array<double, 32> entropy{};
  for (int position = 0; position < 32; ++position) {
    std::array<std::uint64_t, 16> counts{};
    for (const auto& a : addresses) {
      ++counts[static_cast<std::size_t>(nibble_at(a, position))];
    }
    double h = 0.0;
    const double n = static_cast<double>(addresses.size());
    for (const auto c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / n;
      h -= p * std::log2(p);
    }
    entropy[static_cast<std::size_t>(position)] = h / 4.0;
  }

  auto classify = [&](int position) {
    const double h = entropy[static_cast<std::size_t>(position)];
    if (h <= config_.stable_cutoff) return Segment::Kind::kStable;
    if (h >= config_.random_cutoff) return Segment::Kind::kRandom;
    return Segment::Kind::kValued;
  };

  // Group consecutive same-kind positions into segments (length-capped).
  int position = 0;
  while (position < 32) {
    Segment segment;
    segment.first_nibble = position;
    segment.kind = classify(position);
    int end = position + 1;
    while (end < 32 && classify(end) == segment.kind &&
           end - position < config_.max_segment_nibbles) {
      ++end;
    }
    segment.nibble_count = end - position;

    if (segment.kind != Segment::Kind::kRandom) {
      // Value histogram over the slice.
      std::map<std::uint64_t, std::uint64_t> histogram;
      for (const auto& a : addresses) {
        ++histogram[slice_value(a, segment.first_nibble,
                                segment.nibble_count)];
      }
      std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
          histogram.begin(), histogram.end());
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& x, const auto& y) {
                  return x.second > y.second;
                });
      const double total = static_cast<double>(addresses.size());
      double covered = 0.0;
      for (std::size_t i = 0;
           i < sorted.size() && i < config_.max_values_per_segment; ++i) {
        const double weight = static_cast<double>(sorted[i].second) / total;
        segment.values.emplace_back(sorted[i].first, weight);
        covered += weight;
      }
      segment.random_mass = std::max(0.0, 1.0 - covered);
    } else {
      segment.random_mass = 1.0;
    }
    segments_.push_back(std::move(segment));
    position = end;
  }
}

net::Ipv6Address EntropyIpModel::generate_one(util::Rng& rng) const {
  if (segments_.empty()) {
    throw std::logic_error("EntropyIpModel::generate before train");
  }
  std::uint64_t hi = 0, lo = 0;
  for (const auto& segment : segments_) {
    std::uint64_t value;
    const double draw = rng.uniform();
    if (draw < segment.random_mass) {
      const int bits = 4 * segment.nibble_count;
      value = bits >= 64 ? rng.next() : rng.next() & ((1ULL << bits) - 1);
    } else {
      // Walk the histogram.
      double remaining = draw - segment.random_mass;
      value = segment.values.empty() ? 0 : segment.values.back().first;
      for (const auto& [candidate, weight] : segment.values) {
        if (remaining < weight) {
          value = candidate;
          break;
        }
        remaining -= weight;
      }
    }
    for (int i = segment.nibble_count - 1; i >= 0; --i) {
      set_nibble(hi, lo, segment.first_nibble + i,
                 static_cast<int>(value & 0xf));
      value >>= 4;
    }
  }
  return net::Ipv6Address::from_u64(hi, lo);
}

std::vector<net::Ipv6Address> EntropyIpModel::generate(
    std::size_t n, util::Rng& rng) const {
  std::vector<net::Ipv6Address> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate_one(rng));
  return out;
}

// ------------------------------------------------------------------ 6Tree

void SpaceTreeModel::train(std::span<const net::Ipv6Address> addresses) {
  if (addresses.empty()) {
    throw std::invalid_argument("SpaceTreeModel::train on empty set");
  }
  regions_.clear();
  cumulative_.clear();
  std::vector<net::Ipv6Address> sorted(addresses.begin(), addresses.end());
  std::sort(sorted.begin(), sorted.end());
  split(sorted, 0, sorted.size(), 0);

  double total = 0.0;
  for (const auto& region : regions_) {
    total += static_cast<double>(region.count);
    cumulative_.push_back(total);
  }
  for (auto& c : cumulative_) c /= total;
}

void SpaceTreeModel::split(std::vector<net::Ipv6Address>& addresses,
                           std::size_t begin, std::size_t end, int depth) {
  if (end - begin <= config_.leaf_threshold || depth >= config_.max_depth) {
    Region region;
    region.prefix = addresses[begin];  // canonical representative
    region.depth = depth;
    region.count = end - begin;
    // Extend through nibbles the whole leaf agrees on (e.g. a constant
    // ::1 suffix): only genuinely varying positions stay free, so the
    // generator explores structure instead of destroying it.
    while (region.depth < 32) {
      const int shared = nibble_at(addresses[begin], region.depth);
      bool uniform = true;
      for (std::size_t i = begin + 1; i < end && uniform; ++i) {
        uniform = nibble_at(addresses[i], region.depth) == shared;
      }
      if (!uniform) break;
      ++region.depth;
    }
    regions_.push_back(region);
    return;
  }
  // Partition by the nibble at `depth` (addresses are sorted, so each
  // value forms a contiguous run).
  std::size_t run_start = begin;
  int run_value = nibble_at(addresses[begin], depth);
  for (std::size_t i = begin + 1; i <= end; ++i) {
    const int value =
        i < end ? nibble_at(addresses[i], depth) : -1;
    if (value != run_value) {
      split(addresses, run_start, i, depth + 1);
      run_start = i;
      run_value = value;
    }
  }
}

net::Ipv6Address SpaceTreeModel::generate_one(util::Rng& rng) const {
  if (regions_.empty()) {
    throw std::logic_error("SpaceTreeModel::generate before train");
  }
  // Density-proportional region choice via the precomputed CDF.
  const double draw = rng.uniform();
  std::size_t lo = 0, hi = cumulative_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cumulative_[mid] < draw) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const Region& region = regions_[lo];
  std::uint64_t h = region.prefix.hi64(), l = region.prefix.lo64();
  for (int position = region.depth; position < 32; ++position) {
    set_nibble(h, l, position, static_cast<int>(rng.bounded(16)));
  }
  return net::Ipv6Address::from_u64(h, l);
}

std::vector<net::Ipv6Address> SpaceTreeModel::generate(
    std::size_t n, util::Rng& rng) const {
  std::vector<net::Ipv6Address> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate_one(rng));
  return out;
}

// -------------------------------------------------------------- evaluation

TgaEvaluation evaluate_candidates(
    std::span<const net::Ipv6Address> candidates,
    std::span<const net::Ipv6Address> training, Zmap6Scanner& scanner,
    util::SimTime t) {
  TgaEvaluation evaluation;
  evaluation.generated = candidates.size();
  const std::unordered_set<net::Ipv6Address> known(training.begin(),
                                                   training.end());
  std::unordered_set<net::Ipv6Address> unique(candidates.begin(),
                                              candidates.end());
  evaluation.unique = unique.size();
  for (const auto& target : unique) {
    if (!scanner.probe(target, t)) continue;
    ++evaluation.responsive;
    if (!known.contains(target)) ++evaluation.new_responsive;
  }
  return evaluation;
}

}  // namespace v6::scan
