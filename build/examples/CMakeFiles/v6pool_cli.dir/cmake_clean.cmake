file(REMOVE_RECURSE
  "CMakeFiles/v6pool_cli.dir/v6pool_cli.cpp.o"
  "CMakeFiles/v6pool_cli.dir/v6pool_cli.cpp.o.d"
  "v6pool_cli"
  "v6pool_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6pool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
