# Empty dependencies file for v6_sim.
# This may be replaced when dependencies are built.
