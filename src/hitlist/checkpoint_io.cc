#include "hitlist/checkpoint_io.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "hitlist/corpus_io.h"
#include "proto/buffer.h"
#include "proto/checksum.h"

namespace v6::hitlist {

namespace {
constexpr char kMagic[8] = {'V', '6', 'C', 'K', 'P', 'T', '0', '1'};
}  // namespace

std::size_t save_checkpoint(std::ostream& out, const CheckpointState& state,
                            const Corpus& corpus) {
  proto::BufferWriter writer;
  writer.bytes(
      std::span(reinterpret_cast<const std::uint8_t*>(kMagic), 8));
  const std::size_t state_begin = writer.size();
  writer.u64(static_cast<std::uint64_t>(state.window_start));
  writer.u64(static_cast<std::uint64_t>(state.window_end));
  writer.u64(static_cast<std::uint64_t>(state.resume_from));
  writer.u64(state.polls_attempted);
  writer.u64(state.polls_answered);
  writer.u32(static_cast<std::uint32_t>(state.vantage_health.size()));
  for (const VantageHealthStats& vh : state.vantage_health) {
    writer.u64(vh.polls);
    writer.u64(vh.answered);
    writer.u64(vh.lost_to_fault);
    writer.u64(vh.retries);
    writer.u64(vh.steered_polls);
  }
  writer.u32(proto::crc32(
      std::span(writer.data()).subspan(state_begin)));
  save_corpus(writer, corpus);

  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw std::runtime_error("checkpoint write failed");
  return writer.size();
}

CollectionCheckpoint load_checkpoint(std::istream& in) {
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  proto::BufferReader reader(bytes);

  std::uint8_t magic[8];
  reader.bytes(magic);
  if (reader.truncated() ||
      !std::equal(std::begin(magic), std::end(magic), kMagic)) {
    throw std::runtime_error("checkpoint: bad magic");
  }

  CheckpointState state;
  state.window_start = static_cast<util::SimTime>(reader.u64());
  state.window_end = static_cast<util::SimTime>(reader.u64());
  state.resume_from = static_cast<util::SimTime>(reader.u64());
  state.polls_attempted = reader.u64();
  state.polls_answered = reader.u64();
  const std::uint32_t vantage_count = reader.u32();
  if (reader.truncated()) {
    throw std::runtime_error("checkpoint: truncated state");
  }
  // Untrusted count sizes the vector below: the section must actually
  // hold 40 bytes per vantage plus the 4-byte CRC.
  constexpr std::uint64_t kVantageBytes = 40;
  if (reader.remaining() < 4 ||
      vantage_count > (reader.remaining() - 4) / kVantageBytes) {
    throw std::runtime_error(
        "checkpoint: vantage count disagrees with payload size");
  }
  state.vantage_health.resize(vantage_count);
  for (VantageHealthStats& vh : state.vantage_health) {
    vh.polls = reader.u64();
    vh.answered = reader.u64();
    vh.lost_to_fault = reader.u64();
    vh.retries = reader.u64();
    vh.steered_polls = reader.u64();
  }
  const std::size_t state_end = bytes.size() - reader.remaining();
  const std::uint32_t state_crc = reader.u32();
  if (reader.truncated()) {
    throw std::runtime_error("checkpoint: truncated state");
  }
  if (state_crc !=
      proto::crc32(std::span(bytes).subspan(8, state_end - 8))) {
    throw std::runtime_error("checkpoint: state CRC mismatch");
  }

  // The embedded corpus is the rest of the file; corpus_io enforces its
  // own CRCs and rejects trailing garbage.
  CollectionCheckpoint checkpoint{
      std::move(state),
      load_corpus(std::span(bytes).subspan(state_end + 4))};
  return checkpoint;
}

std::size_t save_checkpoint_file(const std::string& path,
                                 const CheckpointState& state,
                                 const Corpus& corpus) {
  const std::string tmp = path + ".tmp";
  if (const auto parent = std::filesystem::path(path).parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best-effort; the
    // open below reports the actionable failure
  }
  std::size_t written = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open " + tmp);
    }
    written = save_checkpoint(out, state, corpus);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path +
                             " failed: " + ec.message());
  }
  return written;
}

CollectionCheckpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  return load_checkpoint(in);
}

}  // namespace v6::hitlist
