#include "analysis/parallel_scan.h"

#include <chrono>
#include <numeric>

#include "util/thread_pool.h"

namespace v6::analysis {

std::uint64_t monotonic_micros() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ParallelScan::ParallelScan(const AnalysisConfig& config) : config_(config) {}

ParallelScan::~ParallelScan() = default;

void ParallelScan::run(const ScanSource& source) {
  if (kernels_.empty()) return;
  const std::uint64_t t_start = monotonic_micros();
  const unsigned shards = config_.resolved_threads();
  const std::size_t span = source.span;
  const std::size_t n_kernels = kernels_.size();

  // Per-shard state matrix. States are created INSIDE each worker so the
  // hot aggregate objects land in that thread's allocator arena — states
  // allocated back-to-back on the spawning thread share cache lines, and
  // the resulting false sharing costs more than the whole merge.
  std::vector<std::vector<void*>> states(shards);
  std::vector<std::uint64_t> shard_records(shards, 0);

  // run_sharded partitions [0, span) into contiguous slot ranges; with
  // shards == 1 it runs inline on the calling thread — the exact serial
  // path (single state, no pool, no merge). The pool's wait_idle()
  // handshake orders each worker's writes to states[s]/shard_records[s]
  // before the merge below reads them. Each shard streams its range as
  // contiguous blocks: every kernel sees every block, so one type-erased
  // callback amortizes over the whole block instead of costing one
  // indirect call per record per kernel.
  util::run_sharded(
      span, shards, [&](unsigned s, std::size_t begin, std::size_t end) {
        auto& row = states[s];
        row.reserve(n_kernels);
        for (const auto& k : kernels_) row.push_back(k.make());
        std::uint64_t n = 0;
        source.visit_blocks(
            begin, end, [&](std::span<const hitlist::AddressRecord> block) {
              for (std::size_t k = 0; k < n_kernels; ++k) {
                kernels_[k].step_block(row[k], block);
              }
              n += block.size();
            });
        shard_records[s] = n;
      });

  const std::uint64_t scanned = std::accumulate(
      shard_records.begin(), shard_records.end(), std::uint64_t{0});

  // Deterministic reduce: fold shard s into shard 0 for s = 1, 2, ... —
  // shard-index order, never completion order — then hand the merged
  // state to finish().
  for (std::size_t k = 0; k < n_kernels; ++k) {
    const std::uint64_t t_merge = monotonic_micros();
    for (unsigned s = 1; s < shards; ++s) {
      kernels_[k].merge(states[0][k], states[s][k]);
      kernels_[k].destroy(states[s][k]);
      states[s][k] = nullptr;
    }
    const std::uint64_t merge_us = monotonic_micros() - t_merge;
    kernels_[k].finish(states[0][k]);
    kernels_[k].destroy(states[0][k]);
    states[0][k] = nullptr;

    AnalysisStageStats stat;
    stat.stage = kernels_[k].stage;
    stat.threads = shards;
    stat.records = scanned;
    stat.merge_us = merge_us;
    stats_.push_back(std::move(stat));
  }
  // One shared pass serves every kernel, so each stage reports the same
  // scan wall time (its own merge/finish time included).
  const std::uint64_t wall = monotonic_micros() - t_start;
  for (std::size_t k = stats_.size() - n_kernels; k < stats_.size(); ++k) {
    stats_[k].wall_us = wall;
  }
  // Metrics ride the already-computed stage stats — nothing touches the
  // registry inside the sharded scan itself.
  if (config_.metrics != nullptr) {
    obs::Registry& reg = *config_.metrics;
    obs::Histogram wall_hist = reg.histogram(
        "v6_analysis_wall_us", "Whole-stage scan wall time (microseconds)");
    obs::Histogram merge_hist = reg.histogram(
        "v6_analysis_merge_us",
        "Shard-index-order merge time (microseconds)");
    for (std::size_t k = stats_.size() - n_kernels; k < stats_.size(); ++k) {
      reg.counter("v6_analysis_records_total",
                  "Records scanned, per analysis kernel",
                  {{"stage", stats_[k].stage}})
          .inc(stats_[k].records);
      wall_hist.observe(static_cast<double>(stats_[k].wall_us));
      merge_hist.observe(static_cast<double>(stats_[k].merge_us));
    }
  }
  // Past the merge barrier every counter is exact; the sampler turns this
  // pass's per-stage record counts into one timeline window.
  if (config_.sampler != nullptr) {
    config_.sampler->sample(config_.sample_time, "analysis");
  }
}

}  // namespace v6::analysis
