#include "net/prefix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace v6::net {
namespace {

Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return Ipv6Address::from_u64(hi, lo);
}

TEST(Ipv6Prefix, CanonicalizesHostBits) {
  const Ipv6Prefix p(addr(0x20010db8deadbeefULL, 0x1234567890abcdefULL), 32);
  EXPECT_EQ(p.address().hi64(), 0x20010db800000000ULL);
  EXPECT_EQ(p.address().lo64(), 0u);
  EXPECT_EQ(p.to_string(), "2001:db8::/32");
}

TEST(Ipv6Prefix, NonByteAlignedLength) {
  const Ipv6Prefix p(addr(0xffffffffffffffffULL, 0), 36);
  EXPECT_EQ(p.address().hi64(), 0xfffffffff0000000ULL);
}

TEST(Ipv6Prefix, LengthClamped) {
  const Ipv6Prefix p(addr(1, 1), 200);
  EXPECT_EQ(p.length(), 128);
  const Ipv6Prefix q(addr(1, 1), -5);
  EXPECT_EQ(q.length(), 0);
}

TEST(Ipv6Prefix, ContainsAddress) {
  const auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8:1234::1")));
  EXPECT_FALSE(p.contains(*Ipv6Address::parse("2001:db9::1")));
}

TEST(Ipv6Prefix, ContainsPrefix) {
  const auto p32 = *Ipv6Prefix::parse("2001:db8::/32");
  const auto p48 = *Ipv6Prefix::parse("2001:db8:1::/48");
  EXPECT_TRUE(p32.contains(p48));
  EXPECT_FALSE(p48.contains(p32));
  EXPECT_TRUE(p32.contains(p32));
}

TEST(Ipv6Prefix, ZeroLengthContainsEverything) {
  const Ipv6Prefix p(addr(0, 0), 0);
  EXPECT_TRUE(p.contains(addr(~0ULL, ~0ULL)));
}

TEST(Ipv6Prefix, Length128IsExactMatch) {
  const Ipv6Prefix p(addr(5, 6), 128);
  EXPECT_TRUE(p.contains(addr(5, 6)));
  EXPECT_FALSE(p.contains(addr(5, 7)));
}

TEST(Ipv6Prefix, Truncated) {
  const auto p64 = *Ipv6Prefix::parse("2001:db8:1:2::/64");
  EXPECT_EQ(p64.truncated(48).to_string(), "2001:db8:1::/48");
  EXPECT_EQ(p64.truncated(64), p64);
  EXPECT_THROW(p64.truncated(80), std::invalid_argument);
}

TEST(Ipv6Prefix, AddressCount) {
  EXPECT_EQ(Ipv6Prefix(addr(0, 0), 128).address_count(), 1u);
  EXPECT_EQ(Ipv6Prefix(addr(0, 0), 120).address_count(), 256u);
  EXPECT_EQ(Ipv6Prefix(addr(0, 0), 64).address_count(), ~std::uint64_t{0});
  EXPECT_EQ(Ipv6Prefix(addr(0, 0), 0).address_count(), ~std::uint64_t{0});
}

TEST(Ipv6Prefix, NthSubnet64) {
  const auto p48 = *Ipv6Prefix::parse("2001:db8:1::/48");
  EXPECT_EQ(p48.nth_subnet64(0).to_string(), "2001:db8:1::");
  EXPECT_EQ(p48.nth_subnet64(0xff).to_string(), "2001:db8:1:ff::");
  EXPECT_THROW(p48.nth_subnet64(0x10000), std::out_of_range);
  EXPECT_THROW(Ipv6Prefix(addr(0, 0), 80).nth_subnet64(0),
               std::invalid_argument);
}

TEST(Ipv6Prefix, ParseInvalid) {
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::"));      // no length
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/129"));  // too long
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/x"));
  EXPECT_FALSE(Ipv6Prefix::parse("nonsense/48"));
}

TEST(Ipv6Prefix, SlashHelpers) {
  const auto a = *Ipv6Address::parse("2001:db8:aaaa:bbbb:1:2:3:4");
  EXPECT_EQ(slash48_of(a).to_string(), "2001:db8:aaaa::/48");
  EXPECT_EQ(slash64_of(a).to_string(), "2001:db8:aaaa:bbbb::/64");
}

TEST(Ipv6Prefix, EqualityIncludesLength) {
  const Ipv6Prefix a(addr(0x20010db800000000ULL, 0), 32);
  const Ipv6Prefix b(addr(0x20010db800000000ULL, 0), 33);
  EXPECT_NE(a, b);
}

// Property: containment is transitive over nested truncations.
class PrefixNesting : public ::testing::TestWithParam<int> {};

TEST_P(PrefixNesting, TruncationChainContains) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    const auto a = addr(rng.next(), rng.next());
    const int l1 = static_cast<int>(rng.bounded(129));
    const int l2 = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(l1) + 1));
    const Ipv6Prefix inner(a, l1);
    const Ipv6Prefix outer = inner.truncated(l2);
    EXPECT_TRUE(outer.contains(inner));
    EXPECT_TRUE(outer.contains(a) || !inner.contains(a));
    // The original address is always inside its own prefix.
    EXPECT_TRUE(inner.contains(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixNesting, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace v6::net
