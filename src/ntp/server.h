// The stratum-2 NTP vantage server.
//
// Each of the 27 vantage points runs one of these, bound to UDP port 123 on
// the data plane. It implements the server side of RFC 5905's client/server
// mode: validate the request, mirror the client's transmit timestamp into
// the origin field, stamp receive/transmit — and, the entire point of the
// paper, log the client's source address. Observations stream to a sink so
// collection is O(1) memory here.
#pragma once

#include <cstdint>
#include <functional>

#include "net/ipv6.h"
#include "netsim/data_plane.h"
#include "proto/ntp_packet.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::ntp {

// One passive sighting of a client address at a vantage point.
struct Observation {
  net::Ipv6Address client;
  util::SimTime time = 0;
  std::uint8_t vantage = 0;
};

using ObservationSink = std::function<void(const Observation&)>;

class NtpServer {
 public:
  // The vantage descriptor is copied: a server outlives any temporary it
  // was configured from.
  NtpServer(sim::VantagePoint vantage, ObservationSink sink);

  // Registers the server's UDP service on the data plane.
  void bind(netsim::DataPlane& plane);

  // Handles one request payload; returns the response bytes, or nothing
  // for malformed / non-client-mode packets. Also usable directly by the
  // fast collection path (which skips UDP framing but not this logic).
  std::optional<std::vector<std::uint8_t>> handle(
      const net::Ipv6Address& src, const std::vector<std::uint8_t>& payload,
      util::SimTime t);

  // Lets the fast path log a sighting without the packet round trip.
  void record(const net::Ipv6Address& client, util::SimTime t);

  const sim::VantagePoint& vantage() const noexcept { return vantage_; }
  std::uint64_t requests_served() const noexcept { return served_; }

 private:
  sim::VantagePoint vantage_;
  ObservationSink sink_;
  std::uint64_t served_ = 0;
};

}  // namespace v6::ntp
