#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace v6::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234, s2 = 1234;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, Mix64IsStateless) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // The xoshiro state must not collapse to all-zero.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 30u);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ExponentialHasConfiguredMean) {
  Rng rng(31);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.25);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(37);
  const double weights[] = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.02);
}

TEST(Rng, WeightedAllZeroReturnsFirst) {
  Rng rng(41);
  const double weights[] = {0.0, 0.0};
  EXPECT_EQ(rng.weighted(weights), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(47);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSampler, RankZeroDominates) {
  Rng rng(53);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 5000);  // ~1/H(100) ~ 19%
}

TEST(ZipfSampler, AllRanksReachable) {
  Rng rng(59);
  ZipfSampler zipf(5, 0.5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

// Property sweep: bounded() never exceeds its bound across bounds and
// seeds.
class RngBoundedProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RngBoundedProperty, InBounds) {
  const auto [bound, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.bounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngBoundedProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 10, 1000,
                                                        1ull << 33),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace v6::util
