// Scalar reference kernels + the dispatching public entry points.
//
// The scalar kernels are deliberately just loops over the per-record
// routines the pre-batch code paths called (net::iid_entropy,
// net::classify_iid, net::Ipv6AddressHash, feistel_core) — identity with
// the legacy per-record path holds by construction, and the AVX2 backend
// is then asserted identical to *this* file by tests and bench rows.
#include "kernels/batch.h"

#include <cstring>

#include "kernels/dispatch.h"
#include "net/entropy.h"
#include "net/ipv6.h"

namespace v6::kernels {

namespace {

net::Ipv6Address load_address(const std::uint8_t* p) {
  net::Ipv6Address::Bytes b;
  std::memcpy(b.data(), p, 16);
  return net::Ipv6Address(b);
}

}  // namespace

namespace detail {

void iid_entropy_batch_scalar(const std::uint64_t* iids, std::size_t n,
                              double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = net::iid_entropy(iids[i]);
}

void classify_iid_batch_scalar(const std::uint64_t* iids,
                               const std::uint8_t* ipv4_accepted,
                               std::size_t n, net::AddressCategory* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = net::classify_iid(iids[i],
                               ipv4_accepted != nullptr && ipv4_accepted[i]);
  }
}

void ipv6_hash_batch_scalar(const std::uint8_t* bytes,
                            std::size_t stride_bytes, std::size_t n,
                            std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = net::Ipv6AddressHash{}(load_address(bytes + i * stride_bytes));
  }
}

void feistel_apply_batch_scalar(const FeistelSpec& spec,
                                const std::uint64_t* in, std::size_t n,
                                std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = feistel_apply(spec, in[i]);
}

void feistel_invert_batch_scalar(const FeistelSpec& spec,
                                 const std::uint64_t* in, std::size_t n,
                                 std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = feistel_invert(spec, in[i]);
}

}  // namespace detail

// Public entry points: one backend check per *block*, not per record —
// that is the entire point of the batch API.

void iid_entropy_batch(const std::uint64_t* iids, std::size_t n, double* out) {
  if (active_backend() == Backend::kAvx2) {
    detail::iid_entropy_batch_avx2(iids, n, out);
  } else {
    detail::iid_entropy_batch_scalar(iids, n, out);
  }
}

void classify_iid_batch(const std::uint64_t* iids,
                        const std::uint8_t* ipv4_accepted, std::size_t n,
                        net::AddressCategory* out) {
  if (active_backend() == Backend::kAvx2) {
    detail::classify_iid_batch_avx2(iids, ipv4_accepted, n, out);
  } else {
    detail::classify_iid_batch_scalar(iids, ipv4_accepted, n, out);
  }
}

void ipv6_hash_batch(const std::uint8_t* bytes, std::size_t stride_bytes,
                     std::size_t n, std::uint64_t* out) {
  if (active_backend() == Backend::kAvx2) {
    detail::ipv6_hash_batch_avx2(bytes, stride_bytes, n, out);
  } else {
    detail::ipv6_hash_batch_scalar(bytes, stride_bytes, n, out);
  }
}

void feistel_apply_batch(const FeistelSpec& spec, const std::uint64_t* in,
                         std::size_t n, std::uint64_t* out) {
  if (active_backend() == Backend::kAvx2) {
    detail::feistel_apply_batch_avx2(spec, in, n, out);
  } else {
    detail::feistel_apply_batch_scalar(spec, in, n, out);
  }
}

void feistel_invert_batch(const FeistelSpec& spec, const std::uint64_t* in,
                          std::size_t n, std::uint64_t* out) {
  if (active_backend() == Backend::kAvx2) {
    detail::feistel_invert_batch_avx2(spec, in, n, out);
  } else {
    detail::feistel_invert_batch_scalar(spec, in, n, out);
  }
}

}  // namespace v6::kernels
