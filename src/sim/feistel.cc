#include "sim/feistel.h"

#include "util/rng.h"

namespace v6::sim {

namespace {
constexpr int kRounds = 4;

int bits_for(std::uint64_t n) noexcept {
  int bits = 1;
  while ((std::uint64_t{1} << bits) < n && bits < 62) ++bits;
  return bits;
}
}  // namespace

FeistelPermutation::FeistelPermutation(std::uint64_t domain_size,
                                       std::uint64_t key) noexcept
    : domain_size_(domain_size ? domain_size : 1), key_(key) {
  // Balanced network over the smallest even bit width covering the domain.
  int bits = bits_for(domain_size_);
  if (bits % 2) ++bits;
  half_bits_ = bits / 2;
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
}

std::uint64_t FeistelPermutation::round_function(std::uint64_t half,
                                                 int round) const noexcept {
  return util::mix64(half ^ key_ ^
                     (static_cast<std::uint64_t>(round) << 56)) &
         half_mask_;
}

std::uint64_t FeistelPermutation::encrypt_once(std::uint64_t x) const noexcept {
  std::uint64_t left = (x >> half_bits_) & half_mask_;
  std::uint64_t right = x & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t next = left ^ round_function(right, r);
    left = right;
    right = next;
  }
  return (left << half_bits_) | right;
}

std::uint64_t FeistelPermutation::decrypt_once(std::uint64_t y) const noexcept {
  std::uint64_t left = (y >> half_bits_) & half_mask_;
  std::uint64_t right = y & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    const std::uint64_t prev = right ^ round_function(left, r);
    right = left;
    left = prev;
  }
  return (left << half_bits_) | right;
}

std::uint64_t FeistelPermutation::apply(std::uint64_t x) const noexcept {
  // Cycle-walk: re-encrypt until the value falls back inside the domain.
  // Expected iterations < 4 because the cover set is < 4x the domain.
  std::uint64_t y = encrypt_once(x);
  while (y >= domain_size_) y = encrypt_once(y);
  return y;
}

std::uint64_t FeistelPermutation::invert(std::uint64_t y) const noexcept {
  std::uint64_t x = decrypt_once(y);
  while (x >= domain_size_) x = decrypt_once(x);
  return x;
}

}  // namespace v6::sim
