// Full-datagram composition and dispatch: one entry point that parses a
// complete IPv6 packet off the wire and hands back the upper-layer payload
// as a typed variant — what a capture loop or endpoint stack would do.
#pragma once

#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "proto/icmpv6.h"
#include "proto/ipv6_header.h"
#include "proto/tcp.h"
#include "proto/udp.h"

namespace v6::proto {

struct ParsedDatagram {
  Ipv6Header header;
  // Exactly one of these, selected by the header's next_header field.
  std::variant<Icmpv6Message, UdpDatagram, TcpSegment> payload;

  bool is_icmpv6() const noexcept {
    return std::holds_alternative<Icmpv6Message>(payload);
  }
  bool is_udp() const noexcept {
    return std::holds_alternative<UdpDatagram>(payload);
  }
  bool is_tcp() const noexcept {
    return std::holds_alternative<TcpSegment>(payload);
  }
};

// Parses an entire IPv6 datagram: header, payload-length consistency, and
// the upper-layer protocol including its checksum. Unknown next-header
// values, length mismatches, and checksum failures all yield nullopt.
std::optional<ParsedDatagram> parse_datagram(
    std::span<const std::uint8_t> wire);

// Serializes a full datagram around an upper-layer message (fills
// next_header and payload_length).
std::vector<std::uint8_t> build_icmpv6_datagram(Ipv6Header header,
                                                const Icmpv6Message& message);
std::vector<std::uint8_t> build_udp_datagram(Ipv6Header header,
                                             const UdpDatagram& datagram);
std::vector<std::uint8_t> build_tcp_datagram(Ipv6Header header,
                                             const TcpSegment& segment);

}  // namespace v6::proto
