#include "netsim/topology.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace v6::netsim {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 3;
    config.total_sites = 500;
    world_ = new sim::World(sim::World::generate(config));
    topo_ = new Topology(*world_);
  }
  static void TearDownTestSuite() {
    delete topo_;
    delete world_;
  }
  static sim::World* world_;
  static Topology* topo_;
};

sim::World* TopologyTest::world_ = nullptr;
Topology* TopologyTest::topo_ = nullptr;

TEST_F(TopologyTest, PathsAreDeterministic) {
  const auto src = world_->vantages().front().address;
  const auto dst = world_->device_address(100, 5000);
  const auto a = topo_->path(src, dst, 5000);
  const auto b = topo_->path(src, dst, 5000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].address, b[i].address);
  }
}

TEST_F(TopologyTest, PathsHaveReasonableLength) {
  const auto src = world_->vantages().front().address;
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto d =
        static_cast<sim::DeviceId>(rng.bounded(world_->devices().size()));
    const auto path = topo_->path(src, world_->device_address(d, 777), 777);
    EXPECT_GE(path.size(), 1u);
    EXPECT_LE(path.size(), 8u);
  }
}

TEST_F(TopologyTest, SiteTargetsTraverseTheirCpe) {
  // Find a site device and confirm the last hop before it is its CPE.
  for (const auto& site : world_->sites()) {
    if (site.device_count == 0) continue;
    const auto target = world_->device_address(site.first_device, 999);
    const auto cpe = world_->device_address(site.cpe, 999);
    const auto path =
        topo_->path(world_->vantages().front().address, target, 999);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back().address, cpe);
    return;
  }
  FAIL() << "no site with client devices";
}

TEST_F(TopologyTest, DestinationNeverAppearsAsHop) {
  util::Rng rng(6);
  const auto src = world_->vantages().front().address;
  for (int i = 0; i < 100; ++i) {
    const auto d =
        static_cast<sim::DeviceId>(rng.bounded(world_->devices().size()));
    const auto dst = world_->device_address(d, 123);
    for (const auto& hop : topo_->path(src, dst, 123)) {
      EXPECT_NE(hop.address, dst);
    }
  }
}

TEST_F(TopologyTest, HopsAreRouterOrCpeAddresses) {
  util::Rng rng(8);
  const auto src = world_->vantages().front().address;
  for (int i = 0; i < 50; ++i) {
    const auto d =
        static_cast<sim::DeviceId>(rng.bounded(world_->devices().size()));
    const auto dst = world_->device_address(d, 222);
    for (const auto& hop : topo_->path(src, dst, 222)) {
      const auto res = world_->resolve(hop.address, 222);
      EXPECT_TRUE(res.kind == sim::World::Resolution::Kind::kRouter ||
                  (res.kind == sim::World::Resolution::Kind::kDevice &&
                   world_->devices()[res.device].kind ==
                       sim::DeviceKind::kCpe))
          << hop.address.to_string();
    }
  }
}

TEST_F(TopologyTest, UnroutedDestinationStillCrossesSourceSide) {
  const auto src = world_->vantages().front().address;
  const auto path =
      topo_->path(src, *net::Ipv6Address::parse("3fff::1"), 10);
  // Egress hops exist even when the destination is off the map.
  EXPECT_GE(path.size(), 1u);
}

TEST_F(TopologyTest, SameSlash64IsOnLink) {
  const auto a = net::Ipv6Address::from_u64(0x20010db800000000ULL, 1);
  const auto b = net::Ipv6Address::from_u64(0x20010db800000000ULL, 2);
  EXPECT_TRUE(topo_->path(a, b, 0).empty());
}

}  // namespace
}  // namespace v6::netsim
