#include "analysis/lifetimes.h"

#include <gtest/gtest.h>

namespace v6::analysis {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

TEST(AddressLifetimes, FractionsOnHandBuiltCorpus) {
  hitlist::Corpus corpus;
  // Two once-seen addresses, one week-long, one seven-month.
  corpus.add(addr(1, 0xa), 0);
  corpus.add(addr(2, 0xb), 50);
  corpus.add(addr(3, 0xc), 0);
  corpus.add(addr(3, 0xc), util::kWeek);
  corpus.add(addr(4, 0xd), 0);
  corpus.add(addr(4, 0xd), 7 * util::kMonth);

  const util::SimDuration points[] = {0, util::kDay, util::kWeek};
  const auto report = address_lifetimes(corpus, points);
  EXPECT_EQ(report.total, 4u);
  EXPECT_DOUBLE_EQ(report.fraction_once, 0.5);
  EXPECT_DOUBLE_EQ(report.fraction_week, 0.5);
  EXPECT_DOUBLE_EQ(report.fraction_month, 0.25);
  EXPECT_DOUBLE_EQ(report.fraction_six_months, 0.25);
  ASSERT_EQ(report.ccdf.size(), 3u);
  EXPECT_DOUBLE_EQ(report.ccdf[0].second, 1.0);   // lifetime >= 0: all
  EXPECT_DOUBLE_EQ(report.ccdf[1].second, 0.5);   // >= 1 day
  EXPECT_DOUBLE_EQ(report.ccdf[2].second, 0.5);   // >= 1 week
}

TEST(AddressLifetimes, EmptyCorpus) {
  hitlist::Corpus corpus;
  const auto report = address_lifetimes(corpus, {});
  EXPECT_EQ(report.total, 0u);
  EXPECT_DOUBLE_EQ(report.fraction_once, 0.0);
}

TEST(IidLifetimes, SpansAcrossPrefixes) {
  hitlist::Corpus corpus;
  // Same low-entropy IID (::1) in two prefixes, a week apart: its IID
  // lifetime bridges both addresses.
  corpus.add(addr(1, 1), 0);
  corpus.add(addr(2, 1), util::kWeek);
  const util::SimDuration points[] = {0, util::kDay, util::kWeek};
  const auto report = iid_lifetimes(corpus, points);
  EXPECT_EQ(report.unique_iids, 1u);
  const auto& low = report.bands[static_cast<std::size_t>(
      net::EntropyBand::kLow)];
  EXPECT_EQ(low.total, 1u);
  EXPECT_DOUBLE_EQ(low.fraction_once, 0.0);
  EXPECT_DOUBLE_EQ(low.fraction_week, 1.0);
  // CDF at one day: lifetime (1 week) > 1 day, so 0.
  EXPECT_DOUBLE_EQ(low.cdf[1].second, 0.0);
  EXPECT_DOUBLE_EQ(low.cdf[2].second, 1.0);
}

TEST(IidLifetimes, BandsSeparateByEntropy) {
  hitlist::Corpus corpus;
  corpus.add(addr(1, 1), 0);                         // low entropy
  corpus.add(addr(1, 0x0123456789abcdefULL), 0);     // high entropy
  corpus.add(addr(1, 0x1111111100000000ULL), 0);     // medium (0.25)
  const auto report = iid_lifetimes(corpus, {});
  EXPECT_EQ(report.unique_iids, 3u);
  for (const auto& band : report.bands) {
    EXPECT_EQ(band.total, 1u);
    EXPECT_DOUBLE_EQ(band.fraction_once, 1.0);
  }
}

TEST(IidLifetimes, DuplicateIidsCollapse) {
  hitlist::Corpus corpus;
  for (std::uint64_t p = 0; p < 10; ++p) {
    corpus.add(addr(p, 0xabcdef0123456789ULL), p * util::kDay);
  }
  const auto report = iid_lifetimes(corpus, {});
  EXPECT_EQ(report.unique_iids, 1u);
}

}  // namespace
}  // namespace v6::analysis
