file(REMOVE_RECURSE
  "libv6_sim.a"
)
