#include "sim/addressing.h"

#include "net/eui64.h"
#include "util/rng.h"

namespace v6::sim {

std::uint64_t iid_for(const Device& device, std::uint64_t prefix_hi,
                      util::SimTime t) noexcept {
  switch (device.strategy) {
    case IidStrategy::kEui64:
      return net::eui64_iid_from_mac(device.mac);
    case IidStrategy::kRandomEphemeral: {
      // RFC 4941 privacy extensions: fresh random IID per day (and per
      // network, so switching prefixes also re-rolls it).
      std::uint64_t iid = util::mix64(
          device.seed ^ util::mix64(static_cast<std::uint64_t>(day_index(t))) ^
          util::mix64(prefix_hi ^ 0xe9a0e9a0e9a0ULL));
      // Avoid the reserved patterns the classifier treats structurally.
      if (iid == 0 || (iid & ~std::uint64_t{0xffff}) == 0) iid |= 1ULL << 63;
      return iid;
    }
    case IidStrategy::kRandomStable: {
      // RFC 7217: opaque, stable per (device, prefix).
      std::uint64_t iid =
          util::mix64(device.seed ^ util::mix64(prefix_hi ^ 0x7217));
      if (iid == 0 || (iid & ~std::uint64_t{0xffff}) == 0) iid |= 1ULL << 63;
      return iid;
    }
    case IidStrategy::kLowByte:
      // ::1 .. ::fe, stable per device.
      return 1 + (util::mix64(device.seed ^ 0x10b) % 0xfe);
    case IidStrategy::kLow2Bytes:
      // ::0100 .. ::ffff.
      return 0x100 + (util::mix64(device.seed ^ 0x20b) % 0xff00);
    case IidStrategy::kZero:
      return 0;
    case IidStrategy::kIpv4Embedded:
      // v4 address in the low 32 bits (e.g. 2001:db8::c0a8:101).
      return device.ipv4;
    case IidStrategy::kStructuredLow: {
      // The Reliance-Jio-style pattern from §4.3: upper four IID bytes
      // zero, lower four random (and rotated like a privacy address).
      const std::uint64_t low = util::mix64(
          device.seed ^ util::mix64(static_cast<std::uint64_t>(day_index(t))) ^
          0x510cULL);
      return low & 0xffffffffULL;
    }
    case IidStrategy::kDhcpSequential:
      // Small pool-assigned values; stable while the device keeps its
      // lease. Range ::100 .. ::8ff spans DHCPv6 pool conventions.
      return 0x100 + (util::mix64(device.seed ^ 0xd4c9) % 0x800);
    case IidStrategy::kSparseEphemeral: {
      // Structurally sparse IIDs: three random nonzero nibbles at three
      // distinct positions, everything else zero. Normalized entropy
      // lands just under the 0.25 "low" cutoff, yet the ~2M-value space
      // keeps the IIDs unique — the population behind the paper's
      // short-lived low-entropy IIDs (Fig 2b). Three quarters of these
      // devices regenerate every 8 hours (short temporary-address
      // lifetimes), the rest keep a stable sparse IID — the long tail of
      // week-plus low-entropy IIDs.
      const bool stable = util::mix64(device.seed ^ 0x57ab1e) % 4 == 0;
      const std::uint64_t epoch =
          stable ? 0
                 : static_cast<std::uint64_t>(t / (8 * util::kHour));
      std::uint64_t h = util::mix64(
          device.seed ^ util::mix64(epoch) ^
          util::mix64(prefix_hi ^ 0x59a45e));
      std::uint64_t iid = 0;
      int used_positions = 0;
      for (int k = 0; k < 3; ++k) {
        const int position = static_cast<int>((h >> (8 * k)) & 0xf);
        const std::uint64_t nibble = 1 + ((h >> (8 * k + 4)) & 0xf) % 15;
        if ((iid >> (4 * position)) & 0xf) continue;  // occupied: skip
        iid |= nibble << (4 * position);
        ++used_positions;
      }
      if (used_positions == 0) iid = 0x0040200000000100ULL;  // degenerate
      // Avoid the structural low-byte/low-2-byte buckets.
      if ((iid & ~std::uint64_t{0xffff}) == 0) iid |= 1ULL << 60;
      return iid;
    }
  }
  return device.seed;
}

}  // namespace v6::sim
