// NTPv4 packet header (RFC 5905 §7.3) — the 48-byte wire format exchanged
// between NTP Pool clients and our stratum-2 vantage servers.
//
// The passive collector never needs more than the source address of a
// request, but the vantage servers implement the real protocol: they parse
// client packets, validate mode/version, and answer with a correctly-formed
// server response (origin = client transmit, receive/transmit stamped from
// the simulated clock), so the packet path exercised is the same one a real
// deployment would run.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/sim_time.h"

namespace v6::proto {

// 64-bit NTP timestamp: seconds since the NTP era (1900) and binary
// fraction. The simulation maps SimTime second 0 to an arbitrary era offset.
struct NtpTimestamp {
  std::uint32_t seconds = 0;
  std::uint32_t fraction = 0;

  static constexpr std::uint32_t kSimEpochInNtpSeconds = 3851712000u;

  static NtpTimestamp from_sim_time(util::SimTime t,
                                    std::uint32_t fraction = 0) noexcept {
    return {static_cast<std::uint32_t>(
                static_cast<std::int64_t>(kSimEpochInNtpSeconds) + t),
            fraction};
  }
  util::SimTime to_sim_time() const noexcept {
    return static_cast<util::SimTime>(seconds) -
           static_cast<util::SimTime>(kSimEpochInNtpSeconds);
  }
  std::uint64_t to_u64() const noexcept {
    return (static_cast<std::uint64_t>(seconds) << 32) | fraction;
  }
  static NtpTimestamp from_u64(std::uint64_t v) noexcept {
    return {static_cast<std::uint32_t>(v >> 32),
            static_cast<std::uint32_t>(v)};
  }

  friend bool operator==(const NtpTimestamp&, const NtpTimestamp&) = default;
};

enum class NtpMode : std::uint8_t {
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
};

struct NtpPacket {
  std::uint8_t leap_indicator = 0;  // 2 bits
  std::uint8_t version = 4;         // 3 bits
  NtpMode mode = NtpMode::kClient;  // 3 bits
  std::uint8_t stratum = 0;
  std::int8_t poll = 6;        // log2 seconds
  std::int8_t precision = -20;  // log2 seconds
  std::uint32_t root_delay = 0;       // 16.16 fixed point
  std::uint32_t root_dispersion = 0;  // 16.16 fixed point
  std::uint32_t reference_id = 0;
  NtpTimestamp reference_time;
  NtpTimestamp origin_time;
  NtpTimestamp receive_time;
  NtpTimestamp transmit_time;

  std::vector<std::uint8_t> encode() const;
  // nullopt on truncation or version outside 3..4.
  static std::optional<NtpPacket> decode(std::span<const std::uint8_t> data);

  friend bool operator==(const NtpPacket&, const NtpPacket&) = default;
};

// A minimal SNTP-style client request: mode 3, transmit stamped with `now`.
NtpPacket make_client_request(util::SimTime now, std::uint32_t nonce_fraction);

// Builds the server response per RFC 5905: copies the client's transmit
// timestamp into origin, stamps receive/transmit, and fills stratum and
// reference id of the answering server.
NtpPacket make_server_response(const NtpPacket& request, util::SimTime now,
                               std::uint8_t stratum,
                               std::uint32_t reference_id);

}  // namespace v6::proto
