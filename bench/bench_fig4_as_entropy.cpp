// Figure 4 — per-AS IID entropy CDFs: (a) the top five ASes over the whole
// study, (b) over a single day. The signature result is Reliance Jio's
// two addressing modes (fully random vs "structured low" with only the
// lower four IID bytes random) and Telkomsel's low-entropy pool.
#include "analysis/as_entropy.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 4: per-AS entropy profiles", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& r = study.results();

  const auto full_window = study.config().world.study_duration;
  const auto top_full = analysis::top_as_entropy_profiles(
      r.ntp, study.world(), 5, 0, full_window);

  std::printf("\n-- Fig 4a: top-5 ASes, full study window --\n");
  for (const auto& profile : top_full) {
    std::printf("AS%u  %-28s  %12s addrs  median entropy %.2f\n",
                profile.asn, profile.name.c_str(),
                util::with_commas(profile.addresses).c_str(),
                profile.entropy.median());
    bench::print_cdf("Fig 4a series: " + profile.name, profile.entropy, 11);
  }

  // Fig 4b uses a single mid-study day (the paper used 1 July 2022 ==
  // study day ~157).
  const util::SimTime day_start =
      std::min<util::SimTime>(157 * util::kDay, full_window - util::kDay);
  const auto top_day = analysis::top_as_entropy_profiles(
      r.ntp, study.world(), 5, day_start, day_start + util::kDay);

  std::printf("\n-- Fig 4b: top-5 ASes, single day --\n");
  for (const auto& profile : top_day) {
    std::printf("AS%u  %-28s  %12s addrs  median entropy %.2f\n",
                profile.asn, profile.name.c_str(),
                util::with_commas(profile.addresses).c_str(),
                profile.entropy.median());
    bench::print_cdf("Fig 4b series: " + profile.name, profile.entropy, 11);
  }

  std::printf("\n");
  bench::Comparison comparison;
  bool jio_seen = false, tsel_seen = false;
  for (const auto& profile : top_full) {
    if (profile.name == "Reliance Jio") {
      jio_seen = true;
      // The structured-low mode shows as a visible step below 0.6.
      comparison.row("Reliance Jio share below entropy 0.6",
                     "~1/3 (structured-low mode)",
                     util::percent(profile.entropy.cdf(0.6)));
      comparison.row("Reliance Jio high-entropy share", "~60%",
                     util::percent(1.0 - profile.entropy.cdf(0.75)));
    }
    if (profile.name == "Telekomunikasi Selular") {
      tsel_seen = true;
      comparison.row("Telkomsel median entropy", "below aggregate (~0.8)",
                     std::to_string(profile.entropy.median()));
    }
  }
  comparison.row("Jio among top-5 ASes", "yes", jio_seen ? "yes" : "no");
  comparison.row("Telkomsel among top-5 ASes", "yes",
                 tsel_seen ? "yes" : "no");
  comparison.print();
  return 0;
}
