// The one home for "how many threads?" semantics.
//
// Every parallel subsystem (passive collection, analysis kernels, backscan
// observation) takes a Parallelism knob with the same contract:
//
//   * 0  — size to the hardware: resolved() == ThreadPool::hardware_threads()
//   * 1  — strictly serial: the work runs on the calling thread, taking the
//          exact same code path a single-shard run would (this is the pin
//          used where hook/callback ordering must be reproducible)
//   * N  — exactly N worker shards
//
// Regardless of the value, results are bit-identical: shards are merged in
// shard-index order, so Parallelism only trades wall-clock time.
//
// Parallelism converts implicitly to and from unsigned so existing code
// (`config.threads = 4`, `if (config.threads != 1)`) keeps compiling; new
// code should prefer the named helpers.
#pragma once

namespace v6::util {

struct Parallelism {
  unsigned threads = 0;  // 0 = hardware, 1 = serial, N = exactly N

  constexpr Parallelism() = default;
  constexpr Parallelism(unsigned t) : threads(t) {}  // NOLINT(runtime/explicit)
  constexpr operator unsigned() const { return threads; }

  // The concrete shard count this knob resolves to on this machine.
  unsigned resolved() const noexcept;

  constexpr bool is_serial() const noexcept { return threads == 1; }

  static constexpr Parallelism serial() { return Parallelism(1); }
  static constexpr Parallelism hardware() { return Parallelism(0); }
};

}  // namespace v6::util
