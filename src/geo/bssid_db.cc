#include "geo/bssid_db.h"

namespace v6::geo {

void BssidLocationDb::add(const net::MacAddress& bssid,
                          const LatLon& location) {
  const auto [it, inserted] = locations_.emplace(bssid, location);
  if (inserted) {
    by_oui_[bssid.oui()].push_back(bssid);
  } else {
    it->second = location;
  }
}

std::optional<LatLon> BssidLocationDb::lookup(
    const net::MacAddress& bssid) const {
  const auto it = locations_.find(bssid);
  if (it == locations_.end()) return std::nullopt;
  return it->second;
}

std::span<const net::MacAddress> BssidLocationDb::bssids_in_oui(
    net::Oui oui) const {
  static const std::vector<net::MacAddress> kEmpty;
  const auto it = by_oui_.find(oui);
  return it == by_oui_.end() ? kEmpty : it->second;
}

}  // namespace v6::geo
