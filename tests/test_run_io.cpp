#include "hitlist/run_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "hitlist/corpus.h"
#include "util/rng.h"

namespace v6::hitlist {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

AddressRecord rec(std::uint64_t hi, std::uint64_t lo, std::uint32_t first,
                  std::uint32_t last, std::uint32_t count,
                  std::uint32_t mask) {
  AddressRecord r;
  r.address = addr(hi, lo);
  r.first_seen = first;
  r.last_seen = last;
  r.count = count;
  r.vantage_mask = mask;
  return r;
}

// Ascending random records with the IID structure mix collection actually
// produces: dense same-prefix groups, sparse prefixes, repeat-heavy
// aggregates, and full-entropy IIDs.
std::vector<AddressRecord> random_records(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Corpus corpus(n);
  while (corpus.size() < n) {
    const std::uint64_t prefix = rng.bounded(n / 4 + 1);
    const std::uint64_t iid =
        rng.bounded(2) == 0 ? rng.bounded(512) : rng.next();
    corpus.add(addr(prefix, iid),
               static_cast<util::SimTime>(rng.bounded(1 << 24)),
               static_cast<std::uint8_t>(rng.bounded(34)));
  }
  corpus.canonicalize();
  return {corpus.records().begin(), corpus.records().end()};
}

std::string write_run(const std::vector<AddressRecord>& records,
                      std::uint32_t block_records,
                      RunFileStats* stats = nullptr) {
  std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
  RunWriter writer(out, {.block_records = block_records});
  for (const auto& r : records) writer.append(r);
  const auto s = writer.finish();
  if (stats != nullptr) *stats = s;
  return out.str();
}

std::vector<AddressRecord> read_run(const std::string& bytes) {
  std::stringstream in(bytes,
                       std::ios::in | std::ios::out | std::ios::binary);
  RunReader reader(in);
  std::vector<AddressRecord> out;
  auto cursor = reader.cursor();
  AddressRecord r;
  while (cursor.next(r)) out.push_back(r);
  return out;
}

void expect_same(const std::vector<AddressRecord>& got,
                 const std::vector<AddressRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].address, want[i].address) << "record " << i;
    EXPECT_EQ(got[i].first_seen, want[i].first_seen) << "record " << i;
    EXPECT_EQ(got[i].last_seen, want[i].last_seen) << "record " << i;
    EXPECT_EQ(got[i].count, want[i].count) << "record " << i;
    EXPECT_EQ(got[i].vantage_mask, want[i].vantage_mask) << "record " << i;
  }
}

TEST(RunIo, RoundTripAcrossBlockSizes) {
  const auto records = random_records(500, 11);
  for (const std::uint32_t block_records : {1u, 2u, 7u, 64u, 4096u}) {
    RunFileStats stats;
    const auto bytes = write_run(records, block_records, &stats);
    EXPECT_EQ(stats.records, records.size());
    EXPECT_EQ(stats.bytes, bytes.size());
    std::uint64_t observations = 0;
    for (const auto& r : records) observations += r.count;
    EXPECT_EQ(stats.observations, observations);
    expect_same(read_run(bytes), records);
  }
}

TEST(RunIo, EmptyRunRoundTrips) {
  const auto bytes = write_run({}, 16);
  std::stringstream in(bytes, std::ios::in | std::ios::binary);
  RunReader reader(in);
  EXPECT_EQ(reader.records(), 0u);
  auto cursor = reader.cursor();
  AddressRecord r;
  EXPECT_FALSE(cursor.next(r));
}

TEST(RunIo, TagPackingEdgeCases) {
  // One record per tag-bit combination the encoder special-cases:
  // same-prefix IID deltas (tiny and huge), count==1 elision, zero
  // lifetime, single-bit masks below and above the packed range, and the
  // absolute record at a prefix change.
  const std::vector<AddressRecord> records = {
      rec(1, 0, 5, 5, 1, 1u << 0),              // zero lifetime, count 1
      rec(1, 1, 5, 9, 2, 1u << 15),             // IID delta 1, packed mask
      rec(1, 0x8000000000000000ull, 0, 1u << 30, 0xffffffffu,
          0xffffffffu),                         // huge IID delta, max fields
      rec(2, 0xffffffffffffffffull, 7, 7, 3, 1u << 16),  // mask past packing
      rec(3, 0, 1, 2, 1, (1u << 3) | (1u << 19)),        // multi-bit mask
      rec(3, 1, 0, 0xffffffffu, 1, 1u << 31),   // max lifetime, bit 31
  };
  for (const std::uint32_t block_records : {1u, 3u, 16u}) {
    expect_same(read_run(write_run(records, block_records)), records);
  }
}

TEST(RunIo, WriterRejectsNonAscendingAndZeroCount) {
  std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
  RunWriter writer(out);
  writer.append(rec(1, 5, 0, 0, 1, 1));
  EXPECT_THROW(writer.append(rec(1, 5, 0, 0, 1, 1)),
               std::invalid_argument);  // equal address
  EXPECT_THROW(writer.append(rec(1, 4, 0, 0, 1, 1)),
               std::invalid_argument);  // descending
  EXPECT_THROW(writer.append(rec(2, 0, 0, 0, 0, 1)),
               std::invalid_argument);  // count == 0
  writer.append(rec(2, 0, 0, 0, 1, 1));
  writer.finish();
}

TEST(RunIo, CursorAtFindsEveryRecordAndGaps) {
  const auto records = random_records(300, 23);
  const auto bytes = write_run(records, 8);
  std::stringstream in(bytes, std::ios::in | std::ios::binary);
  RunReader reader(in);

  AddressRecord r;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto cursor = reader.cursor_at(records[i].address);
    ASSERT_TRUE(cursor.next(r)) << "record " << i;
    EXPECT_EQ(r.address, records[i].address) << "record " << i;
    // The cursor keeps streaming the suffix.
    if (i + 1 < records.size()) {
      ASSERT_TRUE(cursor.next(r));
      EXPECT_EQ(r.address, records[i + 1].address);
    } else {
      EXPECT_FALSE(cursor.next(r));
    }
  }

  // Below the first record: the whole run. Past the last: empty.
  auto low = reader.cursor_at(addr(0, 0));
  ASSERT_TRUE(low.next(r));
  EXPECT_EQ(r.address, records.front().address);
  auto high = reader.cursor_at(
      addr(0xffffffffffffffffull, 0xffffffffffffffffull));
  EXPECT_FALSE(high.next(r));
}

TEST(RunIo, DetectsCorruptionAtEveryByteOffset) {
  // Multi-block file; every byte is under a CRC (header, blocks, index),
  // so any single-byte flip must throw somewhere on a full read — never
  // yield a wrong record.
  const auto records = random_records(48, 31);
  const auto bytes = write_run(records, 4);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    EXPECT_THROW(
        {
          const auto got = read_run(corrupt);
          // A successful decode with identical content can only mean the
          // flip landed in a bit the format ignores — there are none.
          expect_same(got, records);
          ADD_FAILURE() << "corruption at byte " << i << " went undetected";
        },
        std::runtime_error)
        << "byte " << i;
  }
}

TEST(RunIo, DetectsTruncationAtEveryLength) {
  const auto records = random_records(32, 37);
  const auto bytes = write_run(records, 4);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(read_run(bytes.substr(0, len)), std::runtime_error)
        << "length " << len;
  }
  EXPECT_THROW(read_run(bytes + "x"), std::runtime_error) << "trailing byte";
  expect_same(read_run(bytes), records);  // the intact file still loads
}

// --- k-way merge properties ---------------------------------------------

RecordStream stream_of(const std::vector<AddressRecord>& records) {
  return [&records, i = std::size_t{0}](AddressRecord& out) mutable {
    if (i >= records.size()) return false;
    out = records[i++];
    return true;
  };
}

std::vector<AddressRecord> merge_all(
    const std::vector<std::vector<AddressRecord>>& inputs) {
  std::vector<RecordStream> streams;
  streams.reserve(inputs.size());
  for (const auto& in : inputs) streams.push_back(stream_of(in));
  std::vector<AddressRecord> out;
  merge_record_streams(std::move(streams), [&](const AddressRecord& r) {
    out.push_back(r);
    return true;
  });
  return out;
}

TEST(RunIo, MergeAggregatesDuplicatesLikeCorpus) {
  // Random records partitioned into K runs, with duplicates across runs:
  // the merge must equal the Corpus fold of the same multiset.
  util::Rng rng(47);
  Corpus reference(64);
  std::vector<std::vector<Corpus>> partitions;
  for (int k = 1; k <= 4; ++k) {
    partitions.emplace_back();
    for (int s = 0; s < k; ++s) partitions.back().emplace_back(16);
  }
  for (int i = 0; i < 5000; ++i) {
    const auto a = addr(rng.bounded(40), rng.bounded(40));
    const auto t = static_cast<util::SimTime>(rng.bounded(1 << 20));
    const auto v = static_cast<std::uint8_t>(rng.bounded(34));
    reference.add(a, t, v);
    for (auto& shards : partitions) {
      shards[rng.bounded(shards.size())].add(a, t, v);
    }
  }
  reference.canonicalize();
  const std::vector<AddressRecord> want = {reference.records().begin(),
                                           reference.records().end()};

  for (auto& shards : partitions) {
    std::vector<std::vector<AddressRecord>> inputs;
    for (auto& shard : shards) {
      shard.canonicalize();
      inputs.emplace_back(shard.records().begin(), shard.records().end());
    }
    expect_same(merge_all(inputs), want);
  }
}

TEST(RunIo, MergeCountSumWrapsLikeCorpus) {
  // The aggregation contract is field-for-field Corpus::add_record,
  // including the u32 wrap on the count sum.
  const auto merged = merge_all({{rec(1, 1, 0, 9, 0xffffffffu, 1)},
                                 {rec(1, 1, 2, 5, 2, 2)}});
  Corpus corpus(4);
  corpus.add_record(rec(1, 1, 0, 9, 0xffffffffu, 1));
  corpus.add_record(rec(1, 1, 2, 5, 2, 2));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].count, corpus.records()[0].count);
  EXPECT_EQ(merged[0].count, 1u);  // wrapped
  EXPECT_EQ(merged[0].first_seen, 0u);
  EXPECT_EQ(merged[0].last_seen, 9u);
  EXPECT_EQ(merged[0].vantage_mask, 3u);
}

TEST(RunIo, MergeStopsWhenEmitReturnsFalse) {
  const std::vector<AddressRecord> input = {
      rec(1, 0, 0, 0, 1, 1), rec(2, 0, 0, 0, 1, 1), rec(3, 0, 0, 0, 1, 1)};
  std::vector<RecordStream> streams;
  streams.push_back(stream_of(input));
  std::size_t emitted = 0;
  merge_record_streams(std::move(streams), [&](const AddressRecord&) {
    return ++emitted < 2;
  });
  EXPECT_EQ(emitted, 2u);
}

TEST(RunIo, MergeOverRunFilesMatchesInMemoryStreams) {
  // The same partition merged from actual run-file cursors.
  const auto records = random_records(200, 53);
  std::vector<std::vector<AddressRecord>> inputs(3);
  util::Rng rng(59);
  for (const auto& r : records) inputs[rng.bounded(3)].push_back(r);

  std::vector<std::string> files;
  for (const auto& in : inputs) files.push_back(write_run(in, 8));
  std::vector<std::stringstream> streams_storage;
  std::vector<std::unique_ptr<RunReader>> readers;
  std::vector<RecordStream> streams;
  for (const auto& bytes : files) {
    streams_storage.emplace_back(bytes, std::ios::in | std::ios::binary);
  }
  for (auto& s : streams_storage) {
    readers.push_back(std::make_unique<RunReader>(s));
    streams.push_back(
        [cursor = readers.back()->cursor()](AddressRecord& out) mutable {
          return cursor.next(out);
        });
  }
  std::vector<AddressRecord> merged;
  merge_record_streams(std::move(streams), [&](const AddressRecord& r) {
    merged.push_back(r);
    return true;
  });
  expect_same(merged, records);
}

}  // namespace
}  // namespace v6::hitlist
