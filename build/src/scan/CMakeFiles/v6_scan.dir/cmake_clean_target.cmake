file(REMOVE_RECURSE
  "libv6_scan.a"
)
