#include "net/classify.h"

namespace v6::net {

const char* to_string(AddressCategory c) noexcept {
  switch (c) {
    case AddressCategory::kZeroes:
      return "Zeroes";
    case AddressCategory::kLowByte:
      return "Low Byte";
    case AddressCategory::kLow2Bytes:
      return "Low 2 Bytes";
    case AddressCategory::kIpv4Mapped:
      return "IPv4";
    case AddressCategory::kHighEntropy:
      return "High Entropy";
    case AddressCategory::kMediumEntropy:
      return "Medium Entropy";
    case AddressCategory::kLowEntropy:
      return "Low Entropy";
  }
  return "?";
}

namespace {

// Reads a hextet "as decimal": 0x0192 prints as "192" which is a valid
// decimal octet. Returns nullopt when any nibble is a-f or value > 255.
std::optional<std::uint8_t> hextet_as_decimal_octet(std::uint16_t h) {
  std::uint32_t value = 0;
  bool started = false;
  for (int shift = 12; shift >= 0; shift -= 4) {
    const auto nibble = static_cast<std::uint32_t>((h >> shift) & 0xf);
    if (!started && nibble == 0 && shift != 0) continue;
    started = true;
    if (nibble > 9) return std::nullopt;
    value = value * 10 + nibble;
  }
  if (value > 255) return std::nullopt;
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::vector<Ipv4Candidate> ipv4_candidates(std::uint64_t iid) {
  std::vector<Ipv4Candidate> out;
  const auto low32 = static_cast<std::uint32_t>(iid);
  const auto high32 = static_cast<std::uint32_t>(iid >> 32);

  // kLow32: v4 in the low 32 bits, high 32 bits zero (the common form).
  if (high32 == 0 && low32 != 0) {
    out.push_back({Ipv4Embedding::kLow32, Ipv4Address(low32)});
  }
  // kHigh32: v4 in the high 32 bits, low 32 bits zero.
  if (low32 == 0 && high32 != 0) {
    out.push_back({Ipv4Embedding::kHigh32, Ipv4Address(high32)});
  }
  // kDecimalHextets: each of the four hextets reads as a decimal octet.
  std::array<std::uint8_t, 4> octets{};
  bool ok = true;
  for (int i = 0; i < 4; ++i) {
    const auto h = static_cast<std::uint16_t>(iid >> (48 - 16 * i));
    const auto octet = hextet_as_decimal_octet(h);
    if (!octet) {
      ok = false;
      break;
    }
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (ok) {
    const Ipv4Address v4(octets[0], octets[1], octets[2], octets[3]);
    if (v4.value() != 0) {
      out.push_back({Ipv4Embedding::kDecimalHextets, v4});
    }
  }
  return out;
}

AddressCategory classify_iid(std::uint64_t iid, bool ipv4_accepted) {
  if (iid == 0) return AddressCategory::kZeroes;
  if ((iid & ~std::uint64_t{0xff}) == 0) return AddressCategory::kLowByte;
  if ((iid & ~std::uint64_t{0xffff}) == 0) return AddressCategory::kLow2Bytes;
  if (ipv4_accepted) return AddressCategory::kIpv4Mapped;
  switch (entropy_band(iid_entropy(iid))) {
    case EntropyBand::kHigh:
      return AddressCategory::kHighEntropy;
    case EntropyBand::kMedium:
      return AddressCategory::kMediumEntropy;
    case EntropyBand::kLow:
      return AddressCategory::kLowEntropy;
  }
  return AddressCategory::kLowEntropy;
}

AddressCategory classify_address(const Ipv6Address& a, bool ipv4_accepted) {
  return classify_iid(a.iid(), ipv4_accepted);
}

}  // namespace v6::net
