// Table 1 — comparison of the three datasets (NTP corpus, IPv6 Hitlist,
// CAIDA routed /48): addresses, overlap with the NTP corpus, ASNs, /48s,
// and address density. Also reproduces §3's country mix and §4.1's
// "Phone Provider" AS-type observation.
#include "analysis/dataset_compare.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  // The table corpus is collected sharded; a test asserts bit-identity
  // with threads=1, so the numbers below are unaffected by the knob.
  config.collector.threads = 4;
  bench::print_banner("Table 1: dataset comparison", config);

  core::Study study(config);
  double serial_s = 0.0;
  double sharded_s = 0.0;
  std::uint64_t ablation_addresses = 0;

  // Sharded-collection ablation: the same world and window, fast path,
  // serial vs four shards. On a multicore host the sharded pass should
  // run >=2x faster; single-core hosts will show ~1x (the shards
  // time-slice one CPU).
  {
    netsim::PoolDns dns(study.world(), 0.25, config.pool_capture_share);
    hitlist::CollectorConfig serial_config = config.collector;
    serial_config.threads = 1;
    hitlist::PassiveCollector serial(study.world(), study.plane(), dns,
                                     serial_config);
    hitlist::Corpus serial_corpus(1 << 16);
    serial_s =
        bench::timed_seconds("passive collection, threads=1", [&] {
          serial.run(serial_corpus, config.world.study_start,
                     config.world.study_start +
                         config.world.study_duration);
        });
    hitlist::PassiveCollector sharded(study.world(), study.plane(), dns,
                                      config.collector);
    hitlist::Corpus sharded_corpus(1 << 16);
    sharded_s =
        bench::timed_seconds("passive collection, threads=4", [&] {
          sharded.run(sharded_corpus, config.world.study_start,
                      config.world.study_start +
                          config.world.study_duration);
        });
    std::printf("collection speedup at 4 threads: %.2fx  "
                "(%s addresses; corpora bit-identical: %s)\n\n",
                sharded_s > 0 ? serial_s / sharded_s : 0.0,
                util::with_commas(sharded_corpus.size()).c_str(),
                sharded_corpus.size() == serial_corpus.size() &&
                        sharded_corpus.total_observations() ==
                            serial_corpus.total_observations()
                    ? "yes"
                    : "NO — DETERMINISM BUG");
    ablation_addresses = sharded_corpus.size();
  }

  const double collect_s =
      bench::timed_seconds("passive NTP collection",
                           [&] { study.collect(); });
  const double campaigns_s = bench::timed_seconds(
      "active campaigns", [&] { study.run_campaigns(); });
  const auto& r = study.results();

  const auto ntp =
      analysis::summarize_dataset("NTP Pool (this paper)", r.ntp,
                                  study.world());
  const auto hitlist = analysis::summarize_dataset(
      "IPv6 Hitlist", r.hitlist.corpus, study.world(), &r.ntp);
  const auto caida = analysis::summarize_dataset(
      "CAIDA Routed /48", r.caida.corpus, study.world(), &r.ntp);

  util::TablePrinter table({"Dataset", "Addresses", "Common", "ASNs",
                            "ASNs common", "/48s", "/48s common",
                            "Avg addrs per /48"});
  for (const auto& s : {ntp, hitlist, caida}) {
    table.add_row({s.name, util::with_commas(s.addresses),
                   s.name.starts_with("NTP")
                       ? "-"
                       : util::with_commas(s.common_addresses),
                   util::with_commas(s.asns),
                   s.name.starts_with("NTP")
                       ? "-"
                       : util::with_commas(s.common_asns),
                   util::with_commas(s.slash48s),
                   s.name.starts_with("NTP")
                       ? "-"
                       : util::with_commas(s.common_slash48s),
                   std::to_string(s.addrs_per_slash48)});
  }
  table.print(std::cout);

  const double ntp_over_hitlist =
      static_cast<double>(ntp.addresses) /
      static_cast<double>(std::max<std::uint64_t>(1, hitlist.addresses));
  const double ntp_over_caida =
      static_cast<double>(ntp.addresses) /
      static_cast<double>(std::max<std::uint64_t>(1, caida.addresses));

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("NTP / Hitlist size ratio", "370x (paper window)",
                 std::to_string(ntp_over_hitlist) + "x");
  comparison.row("NTP / CAIDA size ratio", "681x",
                 std::to_string(ntp_over_caida) + "x");
  comparison.row(
      "Hitlist addrs found by NTP", "1.3%",
      util::percent(static_cast<double>(hitlist.common_addresses) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1, hitlist.addresses))));
  comparison.row(
      "CAIDA addrs found by NTP", "0.02%",
      util::percent(static_cast<double>(caida.common_addresses) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1, caida.addresses))));
  comparison.row("NTP avg addrs per /48", "1,098",
                 std::to_string(ntp.addrs_per_slash48));
  comparison.row("Hitlist avg addrs per /48", "50",
                 std::to_string(hitlist.addrs_per_slash48));
  comparison.row("CAIDA avg addrs per /48", "1",
                 std::to_string(caida.addrs_per_slash48));
  comparison.row("NTP ASNs vs Hitlist ASNs", "9,006 vs 18,184 (0.50x)",
                 util::with_commas(ntp.asns) + " vs " +
                     util::with_commas(hitlist.asns));
  comparison.print();

  // §4.1: AS-type mix ("Phone Provider" share).
  std::printf("\nAS-type mix (share of addresses per ASdb-style class):\n");
  util::TablePrinter types({"AS type", "NTP", "IPv6 Hitlist", "CAIDA"});
  const auto ntp_types = analysis::as_type_fractions(r.ntp, study.world());
  const auto hl_types =
      analysis::as_type_fractions(r.hitlist.corpus, study.world());
  const auto ca_types =
      analysis::as_type_fractions(r.caida.corpus, study.world());
  for (std::size_t i = 0; i < ntp_types.size(); ++i) {
    types.add_row({to_string(ntp_types[i].first),
                   util::percent(ntp_types[i].second),
                   util::percent(hl_types[i].second),
                   util::percent(ca_types[i].second)});
  }
  types.print(std::cout);
  std::printf(
      "(paper: 14%% of NTP addresses from Phone Provider ASes vs 2%% of "
      "the Hitlist)\n");

  // §3: country mix.
  std::printf("\nTop countries by unique NTP addresses (paper: IN 1.9B, CN "
              "1.6B, US 1.2B, BR 700M, ID 630M = 76%%):\n");
  const auto mix = study.country_mix();
  std::uint64_t total = 0, top5 = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    total += mix[i].second;
    if (i < 5) top5 += mix[i].second;
  }
  for (std::size_t i = 0; i < mix.size() && i < 5; ++i) {
    std::printf("  %s  %12s\n", mix[i].first.to_string().c_str(),
                util::with_commas(mix[i].second).c_str());
  }
  std::printf("  top-5 share: %s (paper: 76%%)\n",
              util::percent(static_cast<double>(top5) /
                            static_cast<double>(std::max<std::uint64_t>(
                                1, total)))
                  .c_str());

  bench::BenchJson json("bench_table1_datasets");
  json.number("collect_seconds", collect_s);
  json.number("campaigns_seconds", campaigns_s);
  json.number("collection_speedup_4_threads",
              sharded_s > 0 ? serial_s / sharded_s : 0.0);
  json.integer("ablation_addresses", ablation_addresses);
  json.integer("ntp_addresses", ntp.addresses);
  json.integer("hitlist_addresses", hitlist.addresses);
  json.integer("caida_addresses", caida.addresses);
  json.number("ntp_over_hitlist", ntp_over_hitlist);
  json.number("ntp_over_caida", ntp_over_caida);
  json.number("hitlist_found_by_ntp",
              static_cast<double>(hitlist.common_addresses) /
                  static_cast<double>(
                      std::max<std::uint64_t>(1, hitlist.addresses)));
  json.integer("ntp_asns", ntp.asns);
  json.number("ntp_addrs_per_slash48", ntp.addrs_per_slash48);
  json.number("top5_country_share",
              static_cast<double>(top5) /
                  static_cast<double>(std::max<std::uint64_t>(1, total)));
  json.write("BENCH_table1.json");
  return 0;
}
