
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/addressing.cc" "src/sim/CMakeFiles/v6_sim.dir/addressing.cc.o" "gcc" "src/sim/CMakeFiles/v6_sim.dir/addressing.cc.o.d"
  "/root/repo/src/sim/as_profile.cc" "src/sim/CMakeFiles/v6_sim.dir/as_profile.cc.o" "gcc" "src/sim/CMakeFiles/v6_sim.dir/as_profile.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/v6_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/v6_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/feistel.cc" "src/sim/CMakeFiles/v6_sim.dir/feistel.cc.o" "gcc" "src/sim/CMakeFiles/v6_sim.dir/feistel.cc.o.d"
  "/root/repo/src/sim/oui_registry.cc" "src/sim/CMakeFiles/v6_sim.dir/oui_registry.cc.o" "gcc" "src/sim/CMakeFiles/v6_sim.dir/oui_registry.cc.o.d"
  "/root/repo/src/sim/world.cc" "src/sim/CMakeFiles/v6_sim.dir/world.cc.o" "gcc" "src/sim/CMakeFiles/v6_sim.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/v6_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
