# Empty dependencies file for v6_proto.
# This may be replaced when dependencies are built.
