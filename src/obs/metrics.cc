#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace v6::obs {

namespace detail {

unsigned thread_stripe() noexcept {
  static std::atomic<unsigned> next{0};
  // One round-robin id per thread, assigned on first touch and masked to
  // the stripe count. Threads beyond kStripes share stripes — still
  // correct (the cells are atomic), just occasionally contended.
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return id;
}

}  // namespace detail

void Gauge::set(double v) const noexcept {
  if (cell_ != nullptr) {
    cell_->bits.store(std::bit_cast<std::uint64_t>(v),
                      std::memory_order_relaxed);
  }
}

void Gauge::add(double delta) const noexcept {
  if (cell_ == nullptr) return;
  std::uint64_t observed = cell_->bits.load(std::memory_order_relaxed);
  while (!cell_->bits.compare_exchange_weak(
      observed, std::bit_cast<std::uint64_t>(
                    std::bit_cast<double>(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v) const noexcept {
  if (cells_ == nullptr) return;
  // First bucket whose upper edge admits v; past every edge = +Inf bucket.
  const auto it = std::lower_bound(cells_->bounds.begin(),
                                   cells_->bounds.end(), v);
  const auto bucket = static_cast<std::size_t>(it - cells_->bounds.begin());
  cells_->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cells_->count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t observed = cells_->sum_bits.load(std::memory_order_relaxed);
  while (!cells_->sum_bits.compare_exchange_weak(
      observed,
      std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + v),
      std::memory_order_relaxed)) {
  }
}

std::vector<double> default_duration_buckets_us() {
  return {100.0,     250.0,     500.0,      1'000.0,    2'500.0,
          5'000.0,   10'000.0,  25'000.0,   50'000.0,   100'000.0,
          250'000.0, 500'000.0, 1'000'000.0, 2'500'000.0, 10'000'000.0};
}

namespace {

// The index key: name plus labels in registration order. '\x1f' cannot
// appear in metric or label names, so the key is injective.
std::string identity_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key.append(k);
    key.push_back('\x1f');
    key.append(v);
  }
  return key;
}

}  // namespace

Registry::Entry* Registry::find_or_create(MetricType type,
                                          std::string_view name,
                                          std::string_view help,
                                          Labels&& labels,
                                          std::vector<double>&& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (type == MetricType::kHistogram) {
    // Normalize up front so `{1, 2, 2, 1}` and `{1, 2}` are the same
    // bucket layout for both creation and the mismatch check below.
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  }
  const std::string key = identity_key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Existing identity: hand back its cells only when the type agrees;
    // a type clash yields a null entry (the caller returns a no-op
    // handle) rather than corrupting the existing instrument. Same
    // contract for a histogram re-registered with different bucket
    // bounds: silently binding to the first registration's buckets would
    // misfile every observation the second caller makes, so it gets a
    // no-op handle instead.
    if (it->second->type != type) return nullptr;
    if (type == MetricType::kHistogram &&
        it->second->histogram->bounds != bounds) {
      return nullptr;
    }
    return it->second;
  }
  Entry& entry = entries_.emplace_back();
  entry.type = type;
  entry.name = std::string(name);
  entry.help = std::string(help);
  entry.labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter:
      entry.counter = &counter_cells_.emplace_back();
      break;
    case MetricType::kGauge:
      entry.gauge = &gauge_cells_.emplace_back();
      break;
    case MetricType::kHistogram: {
      auto& cells = histogram_cells_.emplace_back();
      cells.bounds = std::move(bounds);  // already sorted + deduped above
      // buckets = finite edges + the +Inf overflow.
      for (std::size_t i = 0; i <= cells.bounds.size(); ++i) {
        cells.buckets.emplace_back(0);
      }
      entry.histogram = &cells;
      break;
    }
  }
  index_.emplace(key, &entry);
  return &entry;
}

Counter Registry::counter(std::string_view name, std::string_view help,
                          Labels labels) {
  Entry* entry = find_or_create(MetricType::kCounter, name, help,
                                std::move(labels), {});
  return entry != nullptr ? Counter(entry->counter) : Counter();
}

Gauge Registry::gauge(std::string_view name, std::string_view help,
                      Labels labels) {
  Entry* entry =
      find_or_create(MetricType::kGauge, name, help, std::move(labels), {});
  return entry != nullptr ? Gauge(entry->gauge) : Gauge();
}

Histogram Registry::histogram(std::string_view name, std::string_view help,
                              std::vector<double> bounds, Labels labels) {
  if (bounds.empty()) bounds = default_duration_buckets_us();
  Entry* entry = find_or_create(MetricType::kHistogram, name, help,
                                std::move(labels), std::move(bounds));
  return entry != nullptr ? Histogram(entry->histogram) : Histogram();
}

std::size_t Registry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.samples.reserve(entries_.size());
    for (const Entry& entry : entries_) {
      MetricSample sample;
      sample.name = entry.name;
      sample.help = entry.help;
      sample.type = entry.type;
      sample.labels = entry.labels;
      switch (entry.type) {
        case MetricType::kCounter: {
          // Fold stripes in ascending index order. Integer addition is
          // commutative, so the fold order is cosmetic — spelled out so
          // the determinism argument has one canonical form.
          std::uint64_t total = 0;
          for (unsigned s = 0; s < detail::kStripes; ++s) {
            total += entry.counter->stripes[s].value.load(
                std::memory_order_relaxed);
          }
          sample.counter_value = total;
          break;
        }
        case MetricType::kGauge:
          sample.gauge_value = std::bit_cast<double>(
              entry.gauge->bits.load(std::memory_order_relaxed));
          break;
        case MetricType::kHistogram: {
          const auto& cells = *entry.histogram;
          sample.histogram.bounds = cells.bounds;
          sample.histogram.counts.reserve(cells.buckets.size());
          for (const auto& bucket : cells.buckets) {
            sample.histogram.counts.push_back(
                bucket.load(std::memory_order_relaxed));
          }
          sample.histogram.count =
              cells.count.load(std::memory_order_relaxed);
          sample.histogram.sum = std::bit_cast<double>(
              cells.sum_bits.load(std::memory_order_relaxed));
          break;
        }
      }
      snap.samples.push_back(std::move(sample));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  snap.spans = tracer_.spans();
  return snap;
}

std::uint64_t Snapshot::counter_sum(std::string_view name) const noexcept {
  std::uint64_t total = 0;
  for (const auto& sample : samples) {
    if (sample.name == name && sample.type == MetricType::kCounter) {
      total += sample.counter_value;
    }
  }
  return total;
}

const MetricSample* Snapshot::find(std::string_view name) const noexcept {
  for (const auto& sample : samples) {
    if (sample.name == name && sample.labels.empty()) return &sample;
  }
  return nullptr;
}

}  // namespace v6::obs
