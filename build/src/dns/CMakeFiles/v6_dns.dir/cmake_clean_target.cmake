file(REMOVE_RECURSE
  "libv6_dns.a"
)
