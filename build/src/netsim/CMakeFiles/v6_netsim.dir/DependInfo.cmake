
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/data_plane.cc" "src/netsim/CMakeFiles/v6_netsim.dir/data_plane.cc.o" "gcc" "src/netsim/CMakeFiles/v6_netsim.dir/data_plane.cc.o.d"
  "/root/repo/src/netsim/pool_dns.cc" "src/netsim/CMakeFiles/v6_netsim.dir/pool_dns.cc.o" "gcc" "src/netsim/CMakeFiles/v6_netsim.dir/pool_dns.cc.o.d"
  "/root/repo/src/netsim/topology.cc" "src/netsim/CMakeFiles/v6_netsim.dir/topology.cc.o" "gcc" "src/netsim/CMakeFiles/v6_netsim.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/v6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/v6_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/v6_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
