#include "obs/trace.h"

#include <algorithm>

namespace v6::obs {

Tracer::SpanId Tracer::begin_span(std::string name, util::SimTime at) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.name = std::move(name);
  span.begin = at;
  span.end = at;
  span.parent =
      open_.empty() ? -1 : static_cast<std::int32_t>(open_.back());
  span.depth = static_cast<std::uint32_t>(open_.size());
  spans_.push_back(std::move(span));
  const SpanId id = spans_.size() - 1;
  open_.push_back(id);
  return id;
}

void Tracer::end_span(SpanId id, util::SimTime at) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find(open_.begin(), open_.end(), id);
  if (it == open_.end()) return;
  // Close the target and everything nested inside it that was left open.
  for (auto open = it; open != open_.end(); ++open) {
    SpanRecord& span = spans_[*open];
    span.end = at;
    span.closed = true;
  }
  open_.erase(it, open_.end());
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
}

}  // namespace v6::obs
