// The serving layer: epoch snapshots, the RCU-style swap, and the
// per-epoch determinism contract (answers are a pure function of the
// published snapshot at any reader/ingest thread count).
#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/eui64_tracking.h"
#include "analysis/scan_source.h"
#include "core/study.h"
#include "net/eui64.h"
#include "obs/cluster.h"
#include "obs/exposition.h"
#include "serve/snapshot.h"

namespace v6::serve {
namespace {

core::StudyConfig small_config(std::uint64_t seed = 7) {
  core::StudyConfig config;
  config.world.seed = seed;
  config.world.total_sites = 250;
  config.pool_capture_share = 1.0;
  config.world.study_duration = 20 * util::kDay;
  return config;
}

core::RunOptions serve_options(util::SimDuration epoch_interval,
                               std::size_t retain = 64) {
  core::RunOptions options;
  options.campaigns = false;
  options.backscan = false;
  options.analysis = false;
  options.serve.enabled = true;
  options.serve.epoch_interval = epoch_interval;
  options.serve.retain_epochs = retain;
  return options;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> epoch_digests(
    const QueryService& service) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& snap : service.retained()) {
    out.emplace_back(snap->epoch(), snap->digest());
  }
  return out;
}

TEST(ServeSnapshot, AnswersHandBuiltCorpus) {
  hitlist::Corpus corpus(64);
  const std::uint64_t net64 = 0x2001'0db8'0001'0002ull;
  const net::MacAddress mac = net::MacAddress::from_u64(0xf00220aabbccull);
  // Three addresses in one /64: a structured IID, a high-entropy IID, and
  // an EUI-64 one; plus a lone address in a different /48.
  const net::Ipv6Address structured = net::Ipv6Address::from_u64(net64, 0x1);
  const net::Ipv6Address random =
      net::Ipv6Address::from_u64(net64, 0x9c37'b1e5'52fa'8d64ull);
  const net::Ipv6Address eui = net::eui64_address(net64, mac);
  const net::Ipv6Address elsewhere =
      net::Ipv6Address::from_u64(0x2001'0db9'0000'0000ull, 0x1);
  corpus.add(structured, 100, 1);
  corpus.add(structured, 900, 2);
  corpus.add(random, 200, 1);
  corpus.add(eui, 300, 1);
  corpus.add(elsewhere, 400, 3);
  corpus.canonicalize();

  const auto snap = Snapshot::build(analysis::make_source(corpus), 1, 1000);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->as_of(), 1000);
  EXPECT_EQ(snap->records(), 4u);
  EXPECT_EQ(snap->observations(), 5u);

  const auto rec = snap->find(structured);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->count, 2u);
  EXPECT_EQ(rec->first_seen, 100u);
  EXPECT_EQ(rec->last_seen, 900u);
  EXPECT_FALSE(snap->contains(net::Ipv6Address::from_u64(net64, 0x2)));

  // The three /64-sharing addresses land in one /48; `elsewhere` in its
  // own.
  EXPECT_EQ(snap->slash48_density(structured), 3u);
  EXPECT_EQ(snap->slash48_density(elsewhere), 1u);
  EXPECT_EQ(snap->slash48_count(), 2u);

  const Slash64Summary* sum = snap->slash64(random);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->addresses, 3u);
  EXPECT_EQ(sum->low + sum->medium + sum->high, 3u);
  EXPECT_GE(sum->low, 1u);   // the structured IID
  EXPECT_GE(sum->high, 1u);  // the random IID
  EXPECT_EQ(sum->eui64, 1u);
  EXPECT_EQ(snap->slash64(net::Ipv6Address::from_u64(0x42, 0x1)), nullptr);

  const OuiRisk* risk = snap->oui_risk(mac.oui());
  ASSERT_NE(risk, nullptr);
  EXPECT_EQ(risk->eui64_addresses, 1u);
  EXPECT_EQ(risk->unique_macs, 1u);
  EXPECT_EQ(risk->trackable_macs, 0u);  // one /64 only: below the §5.2 gate
  EXPECT_EQ(risk->mac_slash64_pairs, 1u);
  EXPECT_EQ(snap->oui_risk(net::Oui(0x123456)), nullptr);
}

TEST(ServeSnapshot, TrackableMacCrossesSlash64Gate) {
  hitlist::Corpus corpus(16);
  const net::MacAddress mac = net::MacAddress::from_u64(0xf00220010203ull);
  corpus.add(net::eui64_address(0xaaaa'0000'0000'0001ull, mac), 10, 1);
  corpus.add(net::eui64_address(0xbbbb'0000'0000'0001ull, mac), 20, 1);
  corpus.canonicalize();
  const auto snap = Snapshot::build(analysis::make_source(corpus), 1, 100);
  const OuiRisk* risk = snap->oui_risk(mac.oui());
  ASSERT_NE(risk, nullptr);
  EXPECT_EQ(risk->unique_macs, 1u);
  EXPECT_EQ(risk->trackable_macs, 1u);  // >= 2 distinct /64s
  EXPECT_EQ(risk->mac_slash64_pairs, 2u);
  EXPECT_EQ(risk->eui64_addresses, 2u);
}

TEST(ServeSnapshot, OuiTotalsMatchEui64Tracker) {
  core::Study study(small_config());
  study.run(serve_options(0));
  const hitlist::Corpus& ntp = study.results().ntp;
  const auto snap = Snapshot::build(analysis::make_source(ntp), 1, 0);

  // The tracker is the §5 reference implementation; the snapshot's
  // per-OUI rows must sum to its totals exactly.
  analysis::Eui64Tracker tracker(ntp, study.world());
  std::uint64_t eui64_addresses = 0, unique_macs = 0, trackable = 0;
  ASSERT_GT(snap->oui_count(), 0u);
  // Sum every OUI row by probing each distinct OUI through the query API.
  // (Rows are not directly iterable — answer-surface only — so rebuild
  // the key set from the corpus.)
  std::vector<std::uint32_t> ouis;
  ntp.for_each([&](const hitlist::AddressRecord& rec) {
    if (const auto mac = net::mac_from_eui64(rec.address.iid())) {
      ouis.push_back(mac->oui().value());
    }
  });
  std::sort(ouis.begin(), ouis.end());
  ouis.erase(std::unique(ouis.begin(), ouis.end()), ouis.end());
  EXPECT_EQ(ouis.size(), snap->oui_count());
  for (const std::uint32_t oui : ouis) {
    const OuiRisk* risk = snap->oui_risk(net::Oui(oui));
    ASSERT_NE(risk, nullptr);
    eui64_addresses += risk->eui64_addresses;
    unique_macs += risk->unique_macs;
    trackable += risk->trackable_macs;
  }
  EXPECT_EQ(eui64_addresses, tracker.eui64_addresses());
  EXPECT_EQ(unique_macs, tracker.unique_macs());
  EXPECT_EQ(trackable, tracker.trackable_macs());
}

TEST(ServeSnapshot, CorpusAndTieredSourcesAgree) {
  // The same collection through the in-memory corpus and the out-of-core
  // tiered backend must serve byte-identical answers (equal digests).
  core::StudyConfig plain = small_config(11);
  core::Study in_memory(plain);
  in_memory.run(serve_options(0));

  core::StudyConfig spilled = small_config(11);
  spilled.spill.memory_budget_bytes = 1 << 15;
  core::Study tiered(spilled);
  tiered.run(serve_options(0));
  ASSERT_NE(tiered.results().ntp_runs, nullptr);
  ASSERT_GT(tiered.results().ntp_runs->run_count(), 1u);

  const auto a =
      Snapshot::build(analysis::make_source(in_memory.results().ntp), 1, 0);
  const auto b = Snapshot::build(
      analysis::make_source(*tiered.results().ntp_runs), 1, 0);
  EXPECT_EQ(a->records(), b->records());
  EXPECT_EQ(a->digest(), b->digest());
}

TEST(QueryServiceTest, RetentionBoundsSnapshots) {
  hitlist::Corpus corpus(16);
  corpus.add(net::Ipv6Address::from_u64(0x1, 0x1), 1, 1);
  corpus.canonicalize();
  const analysis::ScanSource src = analysis::make_source(corpus);

  QueryService service(/*retain_epochs=*/3);
  for (int i = 0; i < 5; ++i) {
    service.publish(src, (i + 1) * 100);
  }
  EXPECT_EQ(service.epochs_published(), 5u);
  const auto retained = service.retained();
  ASSERT_EQ(retained.size(), 3u);
  EXPECT_EQ(retained.front()->epoch(), 3u);
  EXPECT_EQ(retained.back()->epoch(), 5u);
  EXPECT_EQ(service.current()->epoch(), 5u);

  // A reader pinning an evicted epoch keeps it alive on its own.
  const auto pinned = retained.front();
  service.set_retain_epochs(1);
  EXPECT_EQ(service.retained().size(), 1u);
  EXPECT_EQ(pinned->epoch(), 3u);
}

TEST(QueryServiceTest, CountersReachRegistry) {
  obs::Registry registry;
  hitlist::Corpus corpus(16);
  corpus.add(net::Ipv6Address::from_u64(0x1, 0x1), 1, 1);
  corpus.canonicalize();

  QueryService service;
  service.set_metrics(&registry);
  service.publish(analysis::make_source(corpus), 100);
  service.point(net::Ipv6Address::from_u64(0x1, 0x1));
  service.point(net::Ipv6Address::from_u64(0x1, 0x2));
  service.slash48_density(net::Ipv6Address::from_u64(0x1, 0x1));
  service.count_queries(QueryKind::kOuiRisk, 7);

  std::uint64_t point = 0, density = 0, oui = 0, epochs = 0;
  double epoch_gauge = 0, records_gauge = 0;
  for (const auto& sample : registry.snapshot().samples) {
    if (sample.name == "v6_serve_queries_total") {
      for (const auto& [k, v] : sample.labels) {
        if (k != "kind") continue;
        if (v == "point") point = sample.counter_value;
        if (v == "density48") density = sample.counter_value;
        if (v == "oui") oui = sample.counter_value;
      }
    }
    if (sample.name == "v6_serve_epochs_published_total") {
      epochs = sample.counter_value;
    }
    if (sample.name == "v6_serve_epoch") epoch_gauge = sample.gauge_value;
    if (sample.name == "v6_serve_snapshot_records") {
      records_gauge = sample.gauge_value;
    }
  }
  EXPECT_EQ(point, 2u);
  EXPECT_EQ(density, 1u);
  EXPECT_EQ(oui, 7u);
  EXPECT_EQ(epochs, 1u);
  EXPECT_EQ(epoch_gauge, 1.0);
  EXPECT_EQ(records_gauge, 1.0);
}

TEST(QueryServiceTest, LatencyHistogramsRecordWallClockPerKind) {
  obs::Registry registry;
  hitlist::Corpus corpus(16);
  corpus.add(net::Ipv6Address::from_u64(0x1, 0x1), 1, 1);
  corpus.canonicalize();

  QueryService service;
  service.set_metrics(&registry);
  service.publish(analysis::make_source(corpus), 100);
  service.point(net::Ipv6Address::from_u64(0x1, 0x1));
  service.point(net::Ipv6Address::from_u64(0x1, 0x2));
  service.slash48_density(net::Ipv6Address::from_u64(0x1, 0x1));
  service.slash64_entropy(net::Ipv6Address::from_u64(0x1, 0x1));
  service.oui_risk(net::Oui(0x001122));

  // One v6_serve_latency_us histogram per queried kind, each internally
  // consistent: the bucket counts sum to `count` (every observation lands
  // in some bucket), and the observation count equals the query count.
  // The observed values are wall-clock and carry no determinism promise.
  std::uint64_t families_seen = 0;
  for (const auto& sample : registry.snapshot().samples) {
    if (sample.name != "v6_serve_latency_us") continue;
    ++families_seen;
    ASSERT_EQ(sample.labels.size(), 1u);
    EXPECT_EQ(sample.labels[0].first, "kind");
    const std::string& kind = sample.labels[0].second;
    const std::uint64_t expected = kind == "point" ? 2u : 1u;
    EXPECT_EQ(sample.histogram.count, expected) << kind;
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t c : sample.histogram.counts) bucket_sum += c;
    EXPECT_EQ(bucket_sum, sample.histogram.count) << kind;
    EXPECT_EQ(sample.histogram.bounds, serve_latency_buckets_us()) << kind;
    EXPECT_GE(sample.histogram.sum, 0.0) << kind;
  }
  EXPECT_EQ(families_seen, kQueryKinds);

  // The rendered exposition passes the linter's histogram-consistency
  // checks, and the percentile estimator produces values for every kind.
  const std::string prom =
      obs::render(registry.snapshot(), obs::ExpositionFormat::kPrometheus);
  EXPECT_FALSE(obs::lint_prometheus(prom).has_value());
  for (const auto& sample : registry.snapshot().samples) {
    if (sample.name != "v6_serve_latency_us") continue;
    const obs::HistogramSummary summary =
        obs::summarize_histogram(sample.histogram);
    EXPECT_GT(summary.count, 0u);
    EXPECT_TRUE(summary.p50.has_value());
    EXPECT_TRUE(summary.p99.has_value());
  }
}

TEST(QueryServiceTest, StudyPublishesEpochsOnTheGrid) {
  core::Study study(small_config());
  QueryService& service = study.query_service();
  study.run(serve_options(6 * util::kDay));
  // 20-day window, 6-day grid: interior epochs at days 6, 12, 18 plus the
  // final window-end epoch.
  EXPECT_EQ(service.epochs_published(), 4u);
  const auto retained = service.retained();
  ASSERT_EQ(retained.size(), 4u);
  EXPECT_EQ(retained[0]->as_of(), 6 * util::kDay);
  EXPECT_EQ(retained[3]->as_of(), 20 * util::kDay);
  EXPECT_EQ(retained[3]->records(), study.ntp_size());
  // Epochs only grow and the final one covers the full corpus.
  for (std::size_t i = 1; i < retained.size(); ++i) {
    EXPECT_GE(retained[i]->records(), retained[i - 1]->records());
    EXPECT_GT(retained[i]->epoch(), retained[i - 1]->epoch());
  }
  // The query counters feed the registry the timeline sampler folds, so a
  // pinned-epoch reader tallies appear under v6_serve_queries_total.
  service.count_queries(QueryKind::kPoint, 3);
}

TEST(QueryServiceTest, EpochsBitIdenticalAcrossIngestThreadCounts) {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> runs;
  for (const unsigned threads : {1u, 4u}) {
    core::StudyConfig config = small_config(23);
    config.collector.threads = threads;
    core::Study study(config);
    study.run(serve_options(5 * util::kDay));
    runs.push_back(epoch_digests(study.query_service()));
    ASSERT_GE(runs.back().size(), 4u);
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(QueryServiceTest, EpochsBitIdenticalAcrossSpillBudgets) {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> runs;
  for (const std::size_t budget : {std::size_t{0}, std::size_t{1} << 15}) {
    core::StudyConfig config = small_config(29);
    config.spill.memory_budget_bytes = budget;
    core::Study study(config);
    study.run(serve_options(5 * util::kDay));
    runs.push_back(epoch_digests(study.query_service()));
    ASSERT_GE(runs.back().size(), 4u);
  }
  EXPECT_EQ(runs[0], runs[1]);
}

// TSan tier: concurrent readers hammer the service while a background
// thread runs live ingest. Covered by the sanitizer CI jobs (test name
// matches the QueryService regex); in a plain build it still asserts the
// determinism contract — per-epoch answers identical at every reader
// thread count.
TEST(QueryServiceTest, ConcurrentReadersSeeConsistentEpochs) {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> per_run;
  for (const unsigned reader_threads : {1u, 2u, 4u}) {
    core::StudyConfig config = small_config(31);
    config.collector.threads = 2;
    core::Study study(config);
    QueryService& service = study.query_service();

    std::atomic<bool> done{false};
    std::thread ingest([&] {
      study.run(serve_options(4 * util::kDay));
      done.store(true, std::memory_order_release);
    });

    std::vector<std::thread> readers;
    std::vector<std::uint64_t> answered(reader_threads, 0);
    for (unsigned r = 0; r < reader_threads; ++r) {
      readers.emplace_back([&, r] {
        const net::Ipv6Address probe =
            net::Ipv6Address::from_u64(0x2000'0000'0000'0000ull + r, 0x1);
        std::uint64_t local = 0;
        while (!done.load(std::memory_order_acquire)) {
          // The epoch-pinned read path: one atomic load, then any number
          // of queries against the frozen snapshot.
          if (const auto snap = service.current()) {
            local += snap->contains(probe) ? 1 : 0;
            local += snap->slash48_density(probe);
            const auto* sum = snap->slash64(probe);
            local += sum != nullptr ? sum->addresses : 0;
            service.count_queries(QueryKind::kPoint);
            service.count_queries(QueryKind::kDensity48);
            service.count_queries(QueryKind::kEntropy64);
            // Digest stability: the snapshot never mutates under us.
            if (snap->digest() == 0) local += 1;
          }
          local += service.slash48_density(probe);
        }
        answered[r] = local;
      });
    }
    ingest.join();
    for (auto& t : readers) t.join();
    per_run.push_back(epoch_digests(service));
    ASSERT_GE(per_run.back().size(), 5u);
  }
  // Bit-identity across reader thread counts: the readers raced three
  // different schedules against the same ingest; the published epochs
  // must not care.
  EXPECT_EQ(per_run[0], per_run[1]);
  EXPECT_EQ(per_run[0], per_run[2]);
}

}  // namespace
}  // namespace v6::serve
