#include "net/mac.h"

#include <cstdio>

#include "util/strings.h"

namespace v6::net {

std::string Oui::to_string() const {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x", (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::string MacAddress::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  const char sep = text.find('-') != std::string_view::npos ? '-' : ':';
  const auto parts = util::split(text, sep);
  if (parts.size() != 6) return std::nullopt;
  Bytes bytes{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].size() != 2) return std::nullopt;
    const auto value = util::parse_hex_u64(parts[i]);
    if (!value) return std::nullopt;
    bytes[i] = static_cast<std::uint8_t>(*value);
  }
  return MacAddress(bytes);
}

}  // namespace v6::net
