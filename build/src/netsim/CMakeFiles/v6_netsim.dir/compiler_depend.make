# Empty compiler generated dependencies file for v6_netsim.
# This may be replaced when dependencies are built.
