// ParallelScan: the sharded one-pass analysis engine.
//
// Every figure/table analysis is an embarrassingly parallel fold over the
// corpus: a pure per-record kernel feeding an aggregate (Gasser et al.'s
// entropy-style kernels scale linearly with sharding). This engine runs
// any number of registered kernels in ONE pass over a Corpus:
//
//   * the corpus's slot array is partitioned into `threads` contiguous
//     ranges (threads == 1 is the exact serial path: no pool, no merge);
//   * each shard runs every kernel's step() against a shard-local state,
//     visiting records in slot order;
//   * shard states are folded into shard 0's state strictly in ascending
//     shard-index order — NEVER completion order — so floating-point
//     accumulation sees one fixed association for a given thread count,
//     and concatenation-style states (sample vectors) reproduce the
//     serial for_each() sequence exactly.
//
// Determinism contract: a kernel whose merge() makes shard-order
// concatenation equal to the serial visit sequence (or whose aggregates
// are commutative integers/sets) produces BIT-IDENTICAL results at any
// thread count. All ported analyses (entropy distribution, Table 1,
// lifetimes, AS profiles, categories) satisfy this and tests assert it.
//
// Per-stage instrumentation (records scanned, wall µs, merge µs) is
// recorded in AnalysisStageStats so throughput regressions are visible in
// Study results and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/scan_source.h"
#include "hitlist/corpus.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/parallelism.h"
#include "util/sim_time.h"

namespace v6::analysis {

struct AnalysisConfig {
  // Scan shards (see util::Parallelism for the 0/1/N contract). Serial by
  // default: 1 preserves the exact legacy single-threaded behavior.
  util::Parallelism threads = util::Parallelism::serial();

  // Optional metrics sink (not owned; must outlive the scan).
  obs::Registry* metrics = nullptr;

  // Optional timeline sampler (not owned): each run() closes one window
  // stamped `sample_time` after its deterministic merge — a barrier, so
  // the per-stage record counters in the window are exact at any thread
  // count. (Wall-clock stage histograms never enter WindowRecords; see
  // obs/timeline.h.) The analysis runs after the sim clock stopped, so
  // windows are zero-width at the pipeline's end.
  obs::TimelineSampler* sampler = nullptr;
  util::SimTime sample_time = 0;

  // The effective shard count. Kept as a shim for existing callers; new
  // code should use threads.resolved().
  unsigned resolved_threads() const noexcept { return threads.resolved(); }
};

// Per-stage scan instrumentation. Naming convention (repo-wide for stats
// structs): counts are plain nouns, durations carry a `_us` suffix.
// merge_us is included in wall_us.
struct AnalysisStageStats {
  std::string stage;
  unsigned threads = 1;
  std::uint64_t records = 0;   // records scanned by this stage's pass
  std::uint64_t wall_us = 0;   // whole stage: scan + deterministic merge
  std::uint64_t merge_us = 0;  // shard-index-order fold only

  double records_per_second() const noexcept {
    return wall_us == 0 ? 0.0
                        : static_cast<double>(records) * 1e6 /
                              static_cast<double>(wall_us);
  }
};

// Monotonic microseconds (steady_clock) for stage timing.
std::uint64_t monotonic_micros() noexcept;

class ParallelScan {
 public:
  explicit ParallelScan(const AnalysisConfig& config = {});
  ~ParallelScan();

  ParallelScan(const ParallelScan&) = delete;
  ParallelScan& operator=(const ParallelScan&) = delete;

  // Registers one block kernel — the primary form:
  //   make()                -> State, one per shard, before the scan;
  //   step_block(state, block)  per contiguous record block, shard-local
  //                         (no locking needed). Blocks concatenate to
  //                         the ascending record stream; boundaries carry
  //                         no meaning, so the kernel must fold a block
  //                         exactly as it would fold its records one by
  //                         one (batch kernels are bit-identical to their
  //                         per-record references, so handing a block to
  //                         kernels/batch.h satisfies this).
  //   merge(into, from)     folds shard s into the running aggregate, in
  //                         ascending shard order (from is expiring);
  //   finish(state)         consumes the fully merged State.
  // Kernels must not throw (they run on ThreadPool workers).
  template <typename State, typename MakeFn, typename StepBlockFn,
            typename MergeFn, typename FinishFn>
  void add_block_kernel(std::string stage, MakeFn make, StepBlockFn step_block,
                        MergeFn merge, FinishFn finish) {
    Kernel k;
    k.stage = std::move(stage);
    k.make = [make = std::move(make)]() -> void* {
      return new State(make());
    };
    k.step_block = [step_block = std::move(step_block)](
                       void* s, std::span<const hitlist::AddressRecord> b) {
      step_block(*static_cast<State*>(s), b);
    };
    k.merge = [merge = std::move(merge)](void* into, void* from) {
      merge(*static_cast<State*>(into),
            std::move(*static_cast<State*>(from)));
    };
    k.finish = [finish = std::move(finish)](void* s) {
      finish(std::move(*static_cast<State*>(s)));
    };
    k.destroy = [](void* s) { delete static_cast<State*>(s); };
    kernels_.push_back(std::move(k));
  }

  // Per-record kernel registration: step(state, record) runs for every
  // record, wrapped in a loop over each block. Not deprecated — genuinely
  // scalar folds (rare branches, tiny states) read better this way — but
  // hot kernels should register the block form and batch.
  template <typename State, typename MakeFn, typename StepFn,
            typename MergeFn, typename FinishFn>
  void add_kernel(std::string stage, MakeFn make, StepFn step, MergeFn merge,
                  FinishFn finish) {
    add_block_kernel<State>(
        std::move(stage), std::move(make),
        [step = std::move(step)](State& s,
                                 std::span<const hitlist::AddressRecord> b) {
          for (const auto& rec : b) step(s, rec);
        },
        std::move(merge), std::move(finish));
  }

  // One pass over `source`: every registered kernel sees every record.
  // Appends one AnalysisStageStats per kernel to stats(). Reusable — a
  // second run() re-runs the same kernels (with fresh make() states) and
  // appends more stats.
  void run(const ScanSource& source);

  // Convenience over the in-memory backend.
  void run(const hitlist::Corpus& corpus) { run(make_source(corpus)); }

  const std::vector<AnalysisStageStats>& stats() const noexcept {
    return stats_;
  }

 private:
  struct Kernel {
    std::string stage;
    std::function<void*()> make;
    std::function<void(void*, std::span<const hitlist::AddressRecord>)>
        step_block;
    std::function<void(void*, void*)> merge;
    std::function<void(void*)> finish;
    void (*destroy)(void*) = nullptr;
  };

  AnalysisConfig config_;
  std::vector<Kernel> kernels_;
  std::vector<AnalysisStageStats> stats_;
};

// Single-kernel convenience over the block contract: scans `source` and
// returns the merged State. When `stats` is non-null the stage's
// AnalysisStageStats is appended.
template <typename State, typename MakeFn, typename StepBlockFn,
          typename MergeFn>
State scan_corpus_blocks(const ScanSource& source,
                         const AnalysisConfig& config, std::string_view stage,
                         MakeFn make, StepBlockFn step_block, MergeFn merge,
                         std::vector<AnalysisStageStats>* stats = nullptr) {
  ParallelScan scan(config);
  std::optional<State> out;
  scan.add_block_kernel<State>(
      std::string(stage), std::move(make), std::move(step_block),
      std::move(merge),
      [&out](State&& merged) { out.emplace(std::move(merged)); });
  scan.run(source);
  if (stats != nullptr) {
    stats->insert(stats->end(), scan.stats().begin(), scan.stats().end());
  }
  return std::move(*out);
}

// Single-kernel convenience, per-record form.
template <typename State, typename MakeFn, typename StepFn, typename MergeFn>
State scan_corpus(const ScanSource& source, const AnalysisConfig& config,
                  std::string_view stage, MakeFn make, StepFn step,
                  MergeFn merge,
                  std::vector<AnalysisStageStats>* stats = nullptr) {
  return scan_corpus_blocks<State>(
      source, config, stage, std::move(make),
      [step = std::move(step)](State& s,
                               std::span<const hitlist::AddressRecord> b) {
        for (const auto& rec : b) step(s, rec);
      },
      std::move(merge), stats);
}

template <typename State, typename MakeFn, typename StepFn, typename MergeFn>
State scan_corpus(const hitlist::Corpus& corpus, const AnalysisConfig& config,
                  std::string_view stage, MakeFn make, StepFn step,
                  MergeFn merge,
                  std::vector<AnalysisStageStats>* stats = nullptr) {
  return scan_corpus<State>(make_source(corpus), config, stage,
                            std::move(make), std::move(step),
                            std::move(merge), stats);
}

}  // namespace v6::analysis
