// Figure 5 — fraction of the NTP corpus and the IPv6 Hitlist falling into
// the seven address categories (Zeroes / Low Byte / Low 2 Bytes / IPv4 /
// entropy bands) on a single day. Headline: the NTP corpus is ~2/3
// high-entropy, while the Hitlist's Low-Byte share is ~33x the NTP one.
#include "analysis/address_categories.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 5: address categories (single day)", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  bench::timed("active campaigns", [&] { study.run_campaigns(); });
  const auto& r = study.results();

  // The paper compares 1 July (study day ~157): one NTP day against the
  // Hitlist snapshot released for the week prior.
  const util::SimTime day_start = std::min<util::SimTime>(
      157 * util::kDay, study.config().world.study_duration - util::kDay);
  const auto ntp_day = analysis::categorize_corpus(
      r.ntp, study.world(), day_start, day_start + util::kDay);
  const auto hitlist_week = analysis::categorize_corpus(
      r.hitlist.corpus, study.world(), day_start - util::kWeek,
      day_start + util::kDay);

  std::printf("NTP addresses that day: %s; Hitlist snapshot: %s\n\n",
              util::with_commas(ntp_day.total).c_str(),
              util::with_commas(hitlist_week.total).c_str());

  util::TablePrinter table(
      {"Category", "NTP fraction", "Hitlist fraction", "paper (NTP)",
       "paper (Hitlist)"});
  struct PaperRow {
    net::AddressCategory category;
    const char* ntp;
    const char* hitlist;
  };
  // Paper values eyeballed from the log-scale Fig 5 bars.
  const PaperRow rows[] = {
      {net::AddressCategory::kZeroes, "~0.1%", "~1%"},
      {net::AddressCategory::kLowByte, "~0.3%", "~10%"},
      {net::AddressCategory::kLow2Bytes, "~0.5%", "~4%"},
      {net::AddressCategory::kIpv4Mapped, "0.00002%", "3%"},
      {net::AddressCategory::kHighEntropy, "~66%", "~13%"},
      {net::AddressCategory::kMediumEntropy, "~21%", "~8%"},
      {net::AddressCategory::kLowEntropy, "~12%", "~60%"},
  };
  for (const auto& row : rows) {
    table.add_row({to_string(row.category),
                   util::percent(ntp_day.fraction(row.category), 4),
                   util::percent(hitlist_week.fraction(row.category), 4),
                   row.ntp, row.hitlist});
  }
  table.print(std::cout);

  std::printf("\n");
  bench::Comparison comparison;
  const double ntp_low_byte =
      ntp_day.fraction(net::AddressCategory::kLowByte);
  const double hl_low_byte =
      hitlist_week.fraction(net::AddressCategory::kLowByte);
  comparison.row("Hitlist/NTP Low-Byte ratio", "~33x",
                 ntp_low_byte > 0
                     ? std::to_string(hl_low_byte / ntp_low_byte) + "x"
                     : "inf");
  comparison.row(
      "NTP high+medium entropy", "~87%",
      util::percent(
          ntp_day.fraction(net::AddressCategory::kHighEntropy) +
          ntp_day.fraction(net::AddressCategory::kMediumEntropy)));
  comparison.row(
      "Hitlist high+medium entropy", "~20%",
      util::percent(
          hitlist_week.fraction(net::AddressCategory::kHighEntropy) +
          hitlist_week.fraction(net::AddressCategory::kMediumEntropy)));
  comparison.print();
  return 0;
}
