// The passive collection pipeline: every pool-using device's NTP polls,
// steered to vantage servers by the pool DNS, logged into a Corpus.
//
// Two execution paths produce identical corpora (a test asserts it):
//   * wire-fidelity — each poll runs the full stack: RFC 5905 client
//     request -> UDP with pseudo-header checksum -> data-plane delivery
//     (loss applies) -> server decode/validate/respond -> client validates
//     the response (mode, origin echo). This is the honest path.
//   * fast — skips serialization but keeps the identical control flow
//     (same DNS steering, same loss decisions, same server-side record
//     call), which makes the 10M+-poll benches tractable.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hitlist/corpus.h"
#include "netsim/data_plane.h"
#include "netsim/pool_dns.h"
#include "ntp/server.h"
#include "sim/world.h"

namespace v6::hitlist {

struct CollectorConfig {
  bool wire_fidelity = false;
  // Loss applied on the fast path (the wire path inherits the data
  // plane's own loss); keep the two equal so the paths agree.
  double loss_rate = 0.01;
  std::uint64_t seed = 3;
  // Ablation switch: treat every client as a single-packet (non-iburst)
  // poller.
  bool ignore_bursts = false;
};

// Called for every accepted observation, after it is added to the corpus.
// `vantage_address` is the server the client spoke to (backscanning probes
// from there).
using ObservationHook = std::function<void(
    const ntp::Observation&, const net::Ipv6Address& vantage_address)>;

class PassiveCollector {
 public:
  PassiveCollector(const sim::World& world, netsim::DataPlane& plane,
                   const netsim::PoolDns& dns, const CollectorConfig& config);

  // Runs collection over [start, end); fills `corpus`.
  void run(Corpus& corpus, util::SimTime start, util::SimTime end,
           const ObservationHook& hook = {});

  std::uint64_t polls_attempted() const noexcept { return polls_; }
  std::uint64_t polls_answered() const noexcept { return answered_; }

 private:
  const sim::World* world_;
  netsim::DataPlane* plane_;
  const netsim::PoolDns* dns_;
  CollectorConfig config_;
  std::uint64_t polls_ = 0;
  std::uint64_t answered_ = 0;
};

}  // namespace v6::hitlist
