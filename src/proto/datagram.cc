#include "proto/datagram.h"

namespace v6::proto {

std::optional<ParsedDatagram> parse_datagram(
    std::span<const std::uint8_t> wire) {
  BufferReader reader(wire);
  const auto header = Ipv6Header::decode(reader);
  if (!header) return std::nullopt;
  if (reader.remaining() != header->payload_length) return std::nullopt;
  const std::span<const std::uint8_t> payload =
      wire.subspan(wire.size() - reader.remaining());

  ParsedDatagram parsed;
  parsed.header = *header;
  switch (header->next_header) {
    case kProtoIcmpv6: {
      const auto message = decode_icmpv6(payload, header->src, header->dst);
      if (!message) return std::nullopt;
      parsed.payload = *message;
      return parsed;
    }
    case kProtoUdp: {
      const auto datagram = decode_udp(payload, header->src, header->dst);
      if (!datagram) return std::nullopt;
      parsed.payload = *datagram;
      return parsed;
    }
    case kProtoTcp: {
      const auto segment = decode_tcp(payload, header->src, header->dst);
      if (!segment) return std::nullopt;
      parsed.payload = *segment;
      return parsed;
    }
    default:
      return std::nullopt;
  }
}

std::vector<std::uint8_t> build_icmpv6_datagram(Ipv6Header header,
                                                const Icmpv6Message& message) {
  header.next_header = kProtoIcmpv6;
  return build_datagram(header,
                        encode_icmpv6(message, header.src, header.dst));
}

std::vector<std::uint8_t> build_udp_datagram(Ipv6Header header,
                                             const UdpDatagram& datagram) {
  header.next_header = kProtoUdp;
  return build_datagram(header, encode_udp(datagram, header.src, header.dst));
}

std::vector<std::uint8_t> build_tcp_datagram(Ipv6Header header,
                                             const TcpSegment& segment) {
  header.next_header = kProtoTcp;
  return build_datagram(header, encode_tcp(segment, header.src, header.dst));
}

}  // namespace v6::proto
