file(REMOVE_RECURSE
  "../bench/bench_fig2_lifetimes"
  "../bench/bench_fig2_lifetimes.pdb"
  "CMakeFiles/bench_fig2_lifetimes.dir/bench_fig2_lifetimes.cpp.o"
  "CMakeFiles/bench_fig2_lifetimes.dir/bench_fig2_lifetimes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
