#include "geo/geodb.h"

#include <stdexcept>

namespace v6::geo {

void GeoDatabase::add(const net::Ipv6Prefix& prefix, CountryCode country) {
  if (prefix.length() > 64) {
    throw std::invalid_argument("GeoDatabase prefixes must be <= /64");
  }
  entries_[{prefix.address().hi64(), prefix.length()}] = country;
}

std::optional<CountryCode> GeoDatabase::lookup(
    const net::Ipv6Address& address) const {
  const std::uint64_t hi = address.hi64();
  // Try lengths from most to least specific. Entry count per address is
  // small (ASes register /32 and sites /48-/64), so probing each length is
  // cheaper than a trie for our sizes.
  for (int length = 64; length >= 0; --length) {
    const std::uint64_t mask =
        length == 0 ? 0 : ~std::uint64_t{0} << (64 - length);
    const auto it = entries_.find({hi & mask, length});
    if (it != entries_.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace v6::geo
