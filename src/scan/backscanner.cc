#include "scan/backscanner.h"

#include <algorithm>

namespace v6::scan {

Backscanner::Backscanner(netsim::DataPlane& plane,
                         const BackscanConfig& config)
    : plane_(&plane), config_(config), rng_(util::mix64(config.seed ^ 0xbac)) {
  if (config_.metrics != nullptr) {
    obs::Registry& reg = *config_.metrics;
    metric_clients_probed_ = reg.counter(
        "v6_backscan_clients_probed_total",
        "Observed clients probed at their interval boundary");
    metric_clients_responded_ = reg.counter(
        "v6_backscan_clients_responded_total",
        "Probed clients that answered (echo or trace)");
    metric_random_probed_ = reg.counter(
        "v6_backscan_random_probed_total",
        "Random same-/64 addresses probed for alias discovery");
    metric_alias_verdicts_ = reg.counter(
        "v6_backscan_alias_verdicts_total",
        "Random-IID probes that answered, marking the /64 aliased");
    metric_traces_ = reg.counter("v6_backscan_traces_total",
                                 "Sampled Yarrp traces back to clients");
  }
}

void Backscanner::observe(const ntp::Observation& obs,
                          const net::Ipv6Address& vantage_source) {
  const auto interval = static_cast<std::uint64_t>(
      obs.time / std::max<util::SimDuration>(config_.interval, 1));
  // "No IP probed more than once during a 10 minute interval."
  const std::uint64_t key =
      util::mix64(interval ^ util::mix64(obs.client.hi64()) ^
                  util::mix64(obs.client.lo64() + 0x9e37));
  if (!probed_keys_.insert(key).second) return;

  const util::SimTime probe_time = static_cast<util::SimTime>(interval + 1) *
                                   config_.interval;
  // A per-client deterministic RNG keeps the probe sequence independent of
  // observation arrival order.
  util::Rng probe_rng(key);

  // Loss-tolerant probing: scan() re-probes silent targets
  // config_.retries extra times, exactly as the real ZMap6 invocation
  // would.
  Zmap6Config zmap_config;
  zmap_config.source = vantage_source;
  zmap_config.probe_rate = 100000;
  zmap_config.retries = config_.retries;
  zmap_config.seed = probe_rng.next();
  zmap_config.metrics = config_.metrics;
  Zmap6Scanner zmap(*plane_, zmap_config);

  BackscanOutcome outcome;
  outcome.client = obs.client;
  outcome.vantage = obs.vantage;
  outcome.client_responded =
      zmap.scan(std::span(&obs.client, 1), probe_time)[0].responded;
  ++report_.clients_probed;
  metric_clients_probed_.inc();
  if (outcome.client_responded) ++report_.clients_responded;

  // One random address in the client's /64.
  std::uint64_t iid = probe_rng.next();
  if (iid == obs.client.lo64()) iid ^= 1;
  outcome.random_target = net::Ipv6Address::from_u64(obs.client.hi64(), iid);
  outcome.random_responded =
      zmap.scan(std::span(&outcome.random_target, 1), probe_time)[0]
          .responded;
  ++report_.random_probed;
  metric_random_probed_.inc();
  if (outcome.random_responded) {
    responsive_random_.insert(outcome.random_target);
    aliased_.insert(net::slash64_of(outcome.random_target));
    metric_alias_verdicts_.inc();
  }

  // A sampled Yarrp trace back to the client.
  if (probe_rng.chance(config_.trace_fraction)) {
    YarrpConfig yarrp_config;
    yarrp_config.source = vantage_source;
    yarrp_config.max_hops = config_.yarrp_max_hops;
    yarrp_config.probe_rate = 50000;
    yarrp_config.seed = probe_rng.next();
    yarrp_config.metrics = config_.metrics;
    YarrpTracer yarrp(*plane_, yarrp_config);
    metric_traces_.inc();
    const net::Ipv6Address targets[] = {obs.client};
    const auto traces = yarrp.trace(targets, probe_time);
    for (const auto& addr : YarrpTracer::discovered(traces)) {
      trace_found_.insert(addr);
    }
    if (!outcome.client_responded && traces[0].destination_reached) {
      outcome.client_responded = true;
      ++report_.clients_responded;
    }
  }
  if (outcome.client_responded) metric_clients_responded_.inc();
  report_.outcomes.push_back(outcome);
}

BackscanReport Backscanner::finish() {
  report_.aliased_slash64s.assign(aliased_.begin(), aliased_.end());
  std::sort(report_.aliased_slash64s.begin(), report_.aliased_slash64s.end());
  report_.responsive_random_addresses = responsive_random_.size();
  report_.trace_discovered.assign(trace_found_.begin(), trace_found_.end());
  std::sort(report_.trace_discovered.begin(), report_.trace_discovered.end());

  BackscanReport out = std::move(report_);
  report_ = {};
  probed_keys_.clear();
  aliased_.clear();
  responsive_random_.clear();
  trace_found_.clear();
  return out;
}

}  // namespace v6::scan
