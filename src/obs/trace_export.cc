#include "obs/trace_export.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "obs/exposition.h"

namespace v6::obs {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

// One trace event line: {"name":...,"ph":"B","ts":N,"pid":P,"tid":T[,args]}
void append_event(std::string& out, std::string_view name, char ph,
                  std::int64_t ts, std::int64_t pid, int tid,
                  std::string_view extra = {}) {
  out += "{\"name\":";
  detail::append_json_string(out, name);
  out += ",\"ph\":\"";
  out.push_back(ph);
  out += "\",\"ts\":";
  append_i64(out, ts);
  out += ",\"pid\":";
  append_i64(out, pid);
  out += ",\"tid\":";
  append_i64(out, tid);
  out += extra;
  out += "}";
}

// Emits one process lane (spans on tid 1, windows on tid 2) under `pid`.
// `first` threads the top-level event-separator state across lanes.
void append_lane(std::string& out, bool& first, std::int64_t pid,
                 const Snapshot& snapshot, const Timeline& timeline) {
  const auto emit = [&out, &first, pid](std::string_view name, char ph,
                                        std::int64_t ts, int tid,
                                        std::string_view extra = {}) {
    if (!first) out += ",\n";
    first = false;
    append_event(out, name, ph, ts, pid, tid, extra);
  };

  // Spans → B/E pairs on tid 1. Walk the spans in recorded order keeping a
  // stack of open span indices; before opening span i, close everything on
  // the stack that is not i's ancestor (innermost first — exactly the
  // nesting the tracer recorded). `cursor` clamps ts monotone: a span
  // recorded as ending after its successor began (sim windows can touch or
  // overlap across stages) still closes at the successor's begin.
  std::vector<std::size_t> open;
  std::int64_t cursor = 0;
  bool cursor_set = false;
  const auto clamp = [&cursor, &cursor_set](std::int64_t ts) {
    if (!cursor_set || ts > cursor) cursor = ts;
    cursor_set = true;
    return cursor;
  };
  const auto close_top = [&](const std::vector<SpanRecord>& spans) {
    const SpanRecord& span = spans[open.back()];
    emit(span.name, 'E', clamp(std::max(span.begin, span.end)), 1);
    open.pop_back();
  };
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanRecord& span = snapshot.spans[i];
    while (!open.empty() &&
           static_cast<std::int32_t>(open.back()) != span.parent) {
      close_top(snapshot.spans);
    }
    emit(span.name, 'B', clamp(span.begin), 1);
    open.push_back(i);
  }
  while (!open.empty()) close_top(snapshot.spans);

  // Windows → X complete events + C throughput counters on tid 2.
  for (const WindowRecord& rec : timeline) {
    std::string extra = ",\"dur\":";
    append_i64(extra, rec.end - rec.begin);
    emit(rec.stage, 'X', rec.begin, 2, extra);
    std::uint64_t records = 0;
    std::uint64_t answered = 0;
    std::uint64_t fault_lost = 0;
    for (const VantageWindow& vw : rec.vantages) {
      records += vw.records;
      answered += vw.answered;
      fault_lost += vw.fault_lost;
    }
    std::string args = ",\"args\":{\"records\":";
    append_i64(args, static_cast<std::int64_t>(records));
    args += ",\"answered\":";
    append_i64(args, static_cast<std::int64_t>(answered));
    args += ",\"fault_lost\":";
    append_i64(args, static_cast<std::int64_t>(fault_lost));
    args += "}";
    emit("window_throughput", 'C', rec.end, 2, args);
  }
}

}  // namespace

std::string render_trace_events(const Snapshot& snapshot,
                                const Timeline& timeline) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  append_lane(out, first, 1, snapshot, timeline);
  out += "\n]}\n";
  return out;
}

std::string render_cluster_trace(const std::vector<TraceLane>& lanes) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const TraceLane& lane : lanes) {
    // process_name metadata labels the pid lane in the viewer. ts/tid are
    // carried (0) so the linter's per-event requirements stay uniform.
    if (!first) out += ",\n";
    first = false;
    std::string args = ",\"args\":{\"name\":";
    detail::append_json_string(args, lane.name);
    args += "}";
    append_event(out, "process_name", 'M', 0,
                 static_cast<std::int64_t>(lane.pid), 0, args);
    append_lane(out, first, static_cast<std::int64_t>(lane.pid),
                lane.snapshot, lane.timeline);
  }
  out += "\n]}\n";
  return out;
}

std::optional<std::string> lint_trace_events(std::string_view text) {
  if (const auto err = lint_json(text)) return err;

  // Events are one per line by construction; scan each line carrying a
  // "ph" field, tracking per-(pid, tid) ts monotonicity and B/E balance.
  using Lane = std::pair<std::int64_t, std::int64_t>;
  std::map<Lane, std::int64_t> last_ts;
  std::map<Lane, std::int64_t> open_depth;
  std::size_t line_no = 0;
  std::size_t start = 0;
  const auto fail = [&](std::string_view what) {
    return "line " + std::to_string(line_no) + ": " + std::string(what);
  };
  const auto field_int = [](std::string_view line, std::string_view key)
      -> std::optional<std::int64_t> {
    std::string pattern = "\"";
    pattern += key;
    pattern += "\":";
    const std::size_t at = line.find(pattern);
    if (at == std::string_view::npos) return std::nullopt;
    std::int64_t parsed = 0;
    const char* begin = line.data() + at + pattern.size();
    const auto [ptr, ec] =
        std::from_chars(begin, line.data() + line.size(), parsed);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    return parsed;
  };
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    ++line_no;
    const std::size_t ph_at = line.find("\"ph\":\"");
    if (ph_at == std::string_view::npos) continue;
    if (ph_at + 6 >= line.size()) return fail("truncated ph");
    const char ph = line[ph_at + 6];
    const auto ts = field_int(line, "ts");
    const auto tid = field_int(line, "tid");
    if (!ts) return fail("event missing ts");
    if (!tid) return fail("event missing tid");
    const Lane lane{field_int(line, "pid").value_or(1), *tid};
    if (const auto it = last_ts.find(lane);
        it != last_ts.end() && *ts < it->second) {
      return fail("ts not monotone within pid/tid lane");
    }
    last_ts[lane] = *ts;
    if (ph == 'B') {
      ++open_depth[lane];
    } else if (ph == 'E') {
      if (open_depth[lane] == 0) return fail("E without matching B");
      --open_depth[lane];
    }
  }
  for (const auto& [lane, depth] : open_depth) {
    if (depth != 0) {
      return "pid " + std::to_string(lane.first) + " tid " +
             std::to_string(lane.second) + ": " + std::to_string(depth) +
             " unclosed B event(s)";
    }
  }
  return std::nullopt;
}

}  // namespace v6::obs
