file(REMOVE_RECURSE
  "CMakeFiles/v6_proto.dir/buffer.cc.o"
  "CMakeFiles/v6_proto.dir/buffer.cc.o.d"
  "CMakeFiles/v6_proto.dir/checksum.cc.o"
  "CMakeFiles/v6_proto.dir/checksum.cc.o.d"
  "CMakeFiles/v6_proto.dir/datagram.cc.o"
  "CMakeFiles/v6_proto.dir/datagram.cc.o.d"
  "CMakeFiles/v6_proto.dir/icmpv6.cc.o"
  "CMakeFiles/v6_proto.dir/icmpv6.cc.o.d"
  "CMakeFiles/v6_proto.dir/ipv6_header.cc.o"
  "CMakeFiles/v6_proto.dir/ipv6_header.cc.o.d"
  "CMakeFiles/v6_proto.dir/ntp_packet.cc.o"
  "CMakeFiles/v6_proto.dir/ntp_packet.cc.o.d"
  "CMakeFiles/v6_proto.dir/tcp.cc.o"
  "CMakeFiles/v6_proto.dir/tcp.cc.o.d"
  "CMakeFiles/v6_proto.dir/udp.cc.o"
  "CMakeFiles/v6_proto.dir/udp.cc.o.d"
  "libv6_proto.a"
  "libv6_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
