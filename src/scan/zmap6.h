// ZMap6-style stateless ICMPv6 echo scanner.
//
// Like the real tool, the scanner keeps no per-probe state: the echo
// identifier/sequence are derived from the target address, and replies are
// validated by recomputing that derivation — a reply that doesn't match is
// discarded as off-path noise. Probing advances simulated time according to
// the configured rate, so long scans genuinely race against address churn.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "netsim/data_plane.h"
#include "obs/metrics.h"
#include "util/sim_time.h"

namespace v6::scan {

// What a scan run probes with. Like the real tool, one protocol per run.
enum class ProbeProtocol : std::uint8_t {
  kIcmpv6Echo,
  kTcpSyn80,
  kTcpSyn443,
};

struct Zmap6Config {
  net::Ipv6Address source;
  // Probes per simulated second.
  std::uint64_t probe_rate = 100000;
  // Re-probe unanswered targets this many extra times (0 = single shot).
  std::uint32_t retries = 0;
  std::uint64_t seed = 0;
  ProbeProtocol protocol = ProbeProtocol::kIcmpv6Echo;
  // Optional metrics sink (not owned). Appended last so existing
  // positional initializers stay valid.
  obs::Registry* metrics = nullptr;
};

struct EchoRecord {
  net::Ipv6Address target;
  bool responded = false;
};

class Zmap6Scanner {
 public:
  Zmap6Scanner(netsim::DataPlane& plane, const Zmap6Config& config);

  // Probes every target once (plus retries for silent ones), starting at
  // simulated time t0. Returns one record per target, in input order.
  std::vector<EchoRecord> scan(std::span<const net::Ipv6Address> targets,
                               util::SimTime t0);

  // Single probe at an explicit time; validates the reply statelessly.
  bool probe(const net::Ipv6Address& target, util::SimTime t);

  std::uint64_t probes_sent() const noexcept { return sent_; }

 private:
  // ZMap encodes validation state in the echo ident/seq.
  std::uint32_t validator(const net::Ipv6Address& target) const noexcept;

  netsim::DataPlane* plane_;
  Zmap6Config config_;
  std::uint64_t sent_ = 0;
  obs::Counter metric_probes_;
  obs::Counter metric_hits_;
  obs::Counter metric_retries_;
};

}  // namespace v6::scan
