#include "net/entropy.h"

#include <array>
#include <cmath>

namespace v6::net {

namespace {

// log2 lookup for counts 0..16: entropy only ever sees nibble counts of a
// 16-symbol string, so the whole computation is table-driven.
constexpr std::array<double, 17> make_log2_table() {
  std::array<double, 17> t{};
  // std::log2 is not constexpr in C++20 on all compilers; fill at runtime
  // instead via the initializer below.
  return t;
}

struct Log2Table {
  std::array<double, 17> value = make_log2_table();
  Log2Table() {
    for (int i = 1; i <= 16; ++i) {
      value[static_cast<std::size_t>(i)] = std::log2(static_cast<double>(i));
    }
  }
};

const Log2Table kLog2;

}  // namespace

double iid_entropy(std::uint64_t iid) noexcept {
  std::array<std::uint8_t, 16> counts{};
  for (int i = 0; i < 16; ++i) {
    counts[(iid >> (4 * i)) & 0xf]++;
  }
  // H = -sum p log2 p with p = c/16
  //   = log2(16) - (1/16) sum c*log2(c).
  double weighted = 0.0;
  for (const auto c : counts) {
    if (c > 1) weighted += static_cast<double>(c) * kLog2.value[c];
  }
  const double h = 4.0 - weighted / 16.0;
  return h / 4.0;  // normalize by log2(16)
}

const char* to_string(EntropyBand band) noexcept {
  switch (band) {
    case EntropyBand::kLow:
      return "low";
    case EntropyBand::kMedium:
      return "medium";
    case EntropyBand::kHigh:
      return "high";
  }
  return "?";
}

}  // namespace v6::net
