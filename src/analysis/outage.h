// Outage detection from passive NTP observation time series.
//
// One of the paper's opening claims: larger, passively collected hitlists
// improve applications like outage detection, because an eyeball network
// that goes dark simply stops appearing at the vantage servers. The
// OutageMonitor hooks into collection, buckets observations per (AS, day),
// and flags runs of days whose volume collapses versus that AS's own
// baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::analysis {

struct DetectedOutage {
  std::uint32_t as_index = 0;
  sim::Asn asn = 0;
  // Inclusive day range (days since study start).
  std::int64_t first_day = 0;
  std::int64_t last_day = 0;

  friend bool operator==(const DetectedOutage&,
                         const DetectedOutage&) = default;
};

class OutageMonitor {
 public:
  struct Config {
    // A day counts as dark when its observation count falls below this
    // fraction of the AS's median daily volume.
    double dark_fraction = 0.15;
    // Minimum consecutive dark days to report (single-day dips in small
    // ASes are sampling noise, not outages).
    int min_dark_days = 2;
    // ASes with fewer median observations per day than this are too quiet
    // to judge.
    std::uint64_t min_daily_volume = 25;
  };

  explicit OutageMonitor(const sim::World& world) : world_(&world) {}
  OutageMonitor(const sim::World& world, const Config& config)
      : world_(&world), config_(config) {}

  // Feed every observation (wire directly into the collection hook).
  void record(const net::Ipv6Address& client, util::SimTime t);

  // Scans the accumulated series; `window_days` bounds the analysis range
  // (days since study start).
  std::vector<DetectedOutage> detect(std::int64_t window_days) const;

  // Observations bucketed per day for one AS (empty if never seen).
  std::vector<std::uint64_t> daily_series(std::uint32_t as_index,
                                          std::int64_t window_days) const;

 private:
  const sim::World* world_;
  Config config_{};
  // (as_index, day) -> observation count.
  std::unordered_map<std::uint64_t, std::uint64_t> buckets_;
};

}  // namespace v6::analysis
