file(REMOVE_RECURSE
  "../bench/bench_tga_bias"
  "../bench/bench_tga_bias.pdb"
  "CMakeFiles/bench_tga_bias.dir/bench_tga_bias.cpp.o"
  "CMakeFiles/bench_tga_bias.dir/bench_tga_bias.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tga_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
