# Empty dependencies file for v6pool_cli.
# This may be replaced when dependencies are built.
