#include "obs/timeline.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/exposition.h"

namespace v6::obs {

namespace {

// Same injective key the registry index uses: name + '\x1f'-joined labels.
std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key.append(k);
    key.push_back('\x1f');
    key.append(v);
  }
  return key;
}

// If `name` is one of the per-vantage collector families, returns the
// VantageWindow field its delta accumulates into; nullptr otherwise.
std::uint64_t VantageWindow::* vantage_field(std::string_view name) {
  if (name == kVantagePollsFamily) return &VantageWindow::polls;
  if (name == kVantageAnsweredFamily) return &VantageWindow::answered;
  if (name == kVantageFaultLostFamily) return &VantageWindow::fault_lost;
  if (name == kVantageRecordsFamily) return &VantageWindow::records;
  return nullptr;
}

// The decimal "vantage" label value, or nullopt when absent/malformed
// (the sample then stays in the generic counter list).
std::optional<std::uint32_t> vantage_id(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    if (k != "vantage") continue;
    std::uint32_t id = 0;
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), id);
    if (ec != std::errc{} || ptr != v.data() + v.size()) return std::nullopt;
    return id;
  }
  return std::nullopt;
}

}  // namespace

TimelineSampler::TimelineSampler(const Registry& registry,
                                 util::SimDuration interval,
                                 util::SimTime origin)
    : registry_(&registry),
      interval_(std::max<util::SimDuration>(interval, 1)),
      origin_(origin),
      last_(origin) {}

util::SimTime TimelineSampler::next_boundary(util::SimTime t) const noexcept {
  if (t < origin_) return origin_;
  return origin_ + ((t - origin_) / interval_ + 1) * interval_;
}

bool TimelineSampler::on_boundary(util::SimTime t) const noexcept {
  return t >= origin_ && (t - origin_) % interval_ == 0;
}

void TimelineSampler::sample(util::SimTime at, std::string_view stage) {
  WindowRecord rec;
  rec.begin = last_;
  // Stages replay sim windows the pipeline already passed (campaigns
  // re-cover the collection window); clamping keeps the timeline monotone.
  rec.end = std::max(at, last_);
  rec.stage = std::string(stage);

  const Snapshot snap = registry_->snapshot();
  // std::map: vantage series come out sorted by id.
  std::map<std::uint32_t, VantageWindow> vantages;
  for (const auto& s : snap.samples) {
    switch (s.type) {
      case MetricType::kCounter: {
        auto [it, inserted] =
            prev_counters_.try_emplace(series_key(s.name, s.labels), 0);
        const std::uint64_t delta = s.counter_value - it->second;
        it->second = s.counter_value;
        if (delta == 0) break;
        if (auto field = vantage_field(s.name)) {
          if (const auto id = vantage_id(s.labels)) {
            VantageWindow& vw = vantages[*id];
            vw.vantage = *id;
            vw.*field += delta;
            break;
          }
        }
        rec.counters.push_back(WindowCounter{s.name, s.labels, delta});
        break;
      }
      case MetricType::kGauge: {
        // Bit comparison, not ==: NaN-safe and distinguishes -0.0, so the
        // record is exactly "the stored bits changed".
        const std::uint64_t bits = std::bit_cast<std::uint64_t>(s.gauge_value);
        auto [it, inserted] =
            prev_gauge_bits_.try_emplace(series_key(s.name, s.labels), bits);
        if (!inserted) {
          if (it->second == bits) break;
          it->second = bits;
        }
        rec.gauges.push_back(WindowGauge{s.name, s.labels, s.gauge_value});
        break;
      }
      case MetricType::kHistogram: {
        // Count/sum movement only; bucket shapes stay in the end-of-run
        // snapshot. These fields carry wall-clock timings (stage
        // durations, serve latency) and are explicitly outside the
        // timeline's bit-identity contract.
        const std::string key = series_key(s.name, s.labels);
        auto [cit, cfresh] = prev_hist_counts_.try_emplace(key, 0);
        auto [sit, sfresh] = prev_hist_sums_.try_emplace(key, 0.0);
        const std::uint64_t count_delta = s.histogram.count - cit->second;
        const double sum_delta = s.histogram.sum - sit->second;
        cit->second = s.histogram.count;
        sit->second = s.histogram.sum;
        if (count_delta == 0) break;
        rec.histograms.push_back(
            WindowHistogram{s.name, s.labels, count_delta, sum_delta});
        break;
      }
    }
  }
  rec.vantages.reserve(vantages.size());
  for (auto& [id, vw] : vantages) rec.vantages.push_back(vw);

  last_ = rec.end;
  timeline_.push_back(std::move(rec));
}

// --- Exposition ------------------------------------------------------------

namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

// `name{label="v"}` — the Prometheus series notation, reused here so
// timeline series names match the metrics exposition byte for byte.
std::string series_name(std::string_view name, const Labels& labels) {
  std::string out(name);
  out += detail::label_block(labels);
  return out;
}

void append_window_json(std::string& out, const WindowRecord& rec) {
  out += "{\"begin\":";
  append_i64(out, rec.begin);
  out += ",\"end\":";
  append_i64(out, rec.end);
  out += ",\"stage\":";
  detail::append_json_string(out, rec.stage);
  out += ",\"counters\":{";
  bool first = true;
  for (const WindowCounter& c : rec.counters) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, series_name(c.name, c.labels));
    out.push_back(':');
    append_u64(out, c.delta);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const WindowGauge& g : rec.gauges) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, series_name(g.name, g.labels));
    out.push_back(':');
    if (std::isfinite(g.value)) {
      out += detail::format_double(g.value);
    } else {
      out += "null";  // JSON has no Inf/NaN literals
    }
  }
  out += "},\"histograms\":{";
  first = true;
  for (const WindowHistogram& h : rec.histograms) {
    if (!first) out.push_back(',');
    first = false;
    detail::append_json_string(out, series_name(h.name, h.labels));
    out += ":{\"count\":";
    append_u64(out, h.count_delta);
    out += ",\"sum\":";
    if (std::isfinite(h.sum_delta)) {
      out += detail::format_double(h.sum_delta);
    } else {
      out += "null";
    }
    out.push_back('}');
  }
  out += "},\"vantages\":[";
  first = true;
  for (const VantageWindow& vw : rec.vantages) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"vantage\":";
    append_u64(out, vw.vantage);
    out += ",\"polls\":";
    append_u64(out, vw.polls);
    out += ",\"answered\":";
    append_u64(out, vw.answered);
    out += ",\"fault_lost\":";
    append_u64(out, vw.fault_lost);
    out += ",\"records\":";
    append_u64(out, vw.records);
    out.push_back('}');
  }
  out += "]}";
}

std::string render_timeline_jsonl(const Timeline& timeline) {
  std::string out;
  out.reserve(timeline.size() * 192);
  for (const WindowRecord& rec : timeline) {
    append_window_json(out, rec);
    out.push_back('\n');
  }
  return out;
}

// RFC 4180: quote when the field contains a comma, quote, or newline;
// double embedded quotes.
void append_csv_field(std::string& out, std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    out += field;
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

std::string render_timeline_csv(const Timeline& timeline) {
  std::string out = "begin,end,stage,kind,series,value\n";
  const auto row = [&out](util::SimTime begin, util::SimTime end,
                          std::string_view stage, std::string_view kind,
                          std::string_view series, std::string_view value) {
    append_i64(out, begin);
    out.push_back(',');
    append_i64(out, end);
    out.push_back(',');
    append_csv_field(out, stage);
    out.push_back(',');
    out += kind;
    out.push_back(',');
    append_csv_field(out, series);
    out.push_back(',');
    out += value;
    out.push_back('\n');
  };
  std::string num;
  const auto u64_text = [&num](std::uint64_t v) -> std::string_view {
    num.clear();
    append_u64(num, v);
    return num;
  };
  for (const WindowRecord& rec : timeline) {
    for (const WindowCounter& c : rec.counters) {
      row(rec.begin, rec.end, rec.stage, "counter",
          series_name(c.name, c.labels), u64_text(c.delta));
    }
    for (const WindowGauge& g : rec.gauges) {
      row(rec.begin, rec.end, rec.stage, "gauge",
          series_name(g.name, g.labels), detail::format_double(g.value));
    }
    for (const WindowHistogram& h : rec.histograms) {
      row(rec.begin, rec.end, rec.stage, "histogram_count",
          series_name(h.name, h.labels), u64_text(h.count_delta));
      row(rec.begin, rec.end, rec.stage, "histogram_sum",
          series_name(h.name, h.labels), detail::format_double(h.sum_delta));
    }
    for (const VantageWindow& vw : rec.vantages) {
      std::string vantage;
      append_u64(vantage, vw.vantage);
      row(rec.begin, rec.end, rec.stage, "vantage_polls", vantage,
          u64_text(vw.polls));
      row(rec.begin, rec.end, rec.stage, "vantage_answered", vantage,
          u64_text(vw.answered));
      row(rec.begin, rec.end, rec.stage, "vantage_fault_lost", vantage,
          u64_text(vw.fault_lost));
      row(rec.begin, rec.end, rec.stage, "vantage_records", vantage,
          u64_text(vw.records));
    }
  }
  return out;
}

// --- Minimal JSON validator ------------------------------------------------

class JsonLinter {
 public:
  explicit JsonLinter(std::string_view text) : text_(text) {}

  std::optional<std::string> lint() {
    skip_ws();
    if (!value()) return error();
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing data after value");
    return std::nullopt;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::optional<std::string> error() const {
    return "offset " + std::to_string(error_pos_) + ": " + error_;
  }

  bool fail_at(std::size_t pos, std::string_view what) {
    if (error_.empty()) {
      error_pos_ = pos;
      error_ = std::string(what);
    }
    return false;
  }
  std::optional<std::string> fail(std::string_view what) {
    fail_at(pos_, what);
    return error();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail_at(pos_, "invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c < 0x20) return fail_at(pos_, "raw control char in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail_at(pos_, "dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return fail_at(pos_, "invalid \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail_at(pos_, "invalid escape");
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail_at(pos_, "unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > first;
    };
    const std::size_t int_start = pos_;
    if (!digits()) return fail_at(start, "invalid number");
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. invalid).
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return fail_at(start, "invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail_at(start, "invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return fail_at(start, "invalid number");
    }
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) return fail_at(pos_, "nesting too deep");
    bool ok = false;
    if (pos_ >= text_.size()) {
      ok = fail_at(pos_, "expected value");
    } else {
      switch (text_[pos_]) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail_at(pos_, "expected object key");
      }
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail_at(pos_, "expected ':'");
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail_at(pos_, "expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail_at(pos_, "expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::size_t error_pos_ = 0;
  std::string error_;
};

// Integer value of `"key":<int>` in a line our renderer emitted. The
// timeline stages are fixed identifiers, so a key pattern can't occur
// inside a string value.
std::optional<std::int64_t> top_level_int(std::string_view line,
                                          std::string_view key) {
  std::string pattern = "\"";
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t value_at = at + pattern.size();
  std::int64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(
      line.data() + value_at, line.data() + line.size(), parsed);
  if (ec != std::errc{} || ptr == line.data() + value_at) return std::nullopt;
  return parsed;
}

}  // namespace

std::optional<TimelineFormat> parse_timeline_format(std::string_view name) {
  if (name == "jsonl" || name == "json") return TimelineFormat::kJsonl;
  if (name == "csv") return TimelineFormat::kCsv;
  return std::nullopt;
}

std::string_view timeline_format_suffix(TimelineFormat format) {
  return format == TimelineFormat::kCsv ? "csv" : "jsonl";
}

std::string render_timeline(const Timeline& timeline, TimelineFormat format) {
  return format == TimelineFormat::kCsv ? render_timeline_csv(timeline)
                                        : render_timeline_jsonl(timeline);
}

std::string render_window_json(const WindowRecord& rec) {
  std::string out;
  append_window_json(out, rec);
  return out;
}

std::optional<std::string> lint_json(std::string_view text) {
  return JsonLinter(text).lint();
}

std::optional<std::string> lint_timeline_jsonl(std::string_view text) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  std::optional<std::int64_t> prev_end;
  const auto fail = [&](std::string_view what) {
    return "line " + std::to_string(line_no) + ": " + std::string(what);
  };
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] != '{') return fail("window is not a JSON object");
    if (const auto err = lint_json(line)) return fail(*err);
    const auto begin = top_level_int(line, "begin");
    const auto end = top_level_int(line, "end");
    if (!begin || !end) return fail("missing begin/end");
    if (line.find("\"stage\":") == std::string_view::npos) {
      return fail("missing stage");
    }
    if (*begin > *end) return fail("begin after end");
    if (prev_end && *begin != *prev_end) {
      return fail("gap: begin does not match previous window's end");
    }
    prev_end = *end;
  }
  return std::nullopt;
}

}  // namespace v6::obs
