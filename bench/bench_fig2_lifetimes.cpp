// Figure 2 — (a) CCDF of address lifetimes over the whole NTP corpus and
// (b) CDF of IID lifetimes split by entropy band. Headline numbers: >60%
// of addresses observed exactly once; 1.2% live >= 1 week, 0.4% >= 1
// month, 0.03% >= 6 months; low-entropy IIDs persist far longer.
#include "analysis/lifetimes.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 2: address and IID lifetimes", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& r = study.results();

  const std::vector<util::SimDuration> points = {
      0,
      util::kMinute,
      util::kHour,
      util::kDay,
      3 * util::kDay,
      util::kWeek,
      2 * util::kWeek,
      util::kMonth,
      2 * util::kMonth,
      6 * util::kMonth,
  };

  const auto addresses = analysis::address_lifetimes(r.ntp, points);
  std::printf("# Fig 2a series: CCDF of address lifetimes (N=%s)\n",
              util::with_commas(addresses.total).c_str());
  std::printf("lifetime,ccdf\n");
  for (const auto& [d, frac] : addresses.ccdf) {
    std::printf("%s,%.6f\n", util::format_duration(d).c_str(), frac);
  }

  const auto iids = analysis::iid_lifetimes(r.ntp, points);
  std::printf("\n# Fig 2b series: CDF of IID lifetimes by entropy band "
              "(N=%s unique IIDs)\n",
              util::with_commas(iids.unique_iids).c_str());
  std::printf("lifetime,low,medium,high\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("%s,%.4f,%.4f,%.4f\n",
                util::format_duration(points[i]).c_str(),
                iids.bands[0].cdf[i].second, iids.bands[1].cdf[i].second,
                iids.bands[2].cdf[i].second);
  }

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("addresses observed once", "> 60%",
                 util::percent(addresses.fraction_once));
  comparison.row("addresses alive >= 1 week", "1.2%",
                 util::percent(addresses.fraction_week));
  comparison.row("addresses alive >= 1 month", "0.4%",
                 util::percent(addresses.fraction_month));
  comparison.row("addresses alive >= 6 months", "0.03%",
                 util::percent(addresses.fraction_six_months,  3));
  comparison.row("low-entropy IIDs alive >= 1 week", "10%",
                 util::percent(iids.bands[0].fraction_week));
  comparison.row("high-entropy IIDs alive >= 1 week", "<= 5%",
                 util::percent(iids.bands[2].fraction_week));
  comparison.row("low-entropy IIDs seen once",
                 "~10% more than high-entropy",
                 util::percent(iids.bands[0].fraction_once) + " vs " +
                     util::percent(iids.bands[2].fraction_once));
  comparison.print();
  return 0;
}
