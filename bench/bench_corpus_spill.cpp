// Out-of-core corpus engine: ingest/merge throughput and on-disk size of
// the tiered run files versus the in-memory table, on the same seeded
// world. Exits non-zero if the spilled corpus is not byte-identical to
// the in-memory snapshot — the engine's headline invariant.
//
// Emits BENCH_corpus.json (records/sec ingest, merge MB/s, bytes per
// address on disk) for the perf-trajectory archive.
#include <cstdlib>
#include <sstream>

#include "bench_common.h"
#include "hitlist/corpus_io.h"
#include "hitlist/passive_collector.h"
#include "hitlist/tiered_corpus.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  config.collector.threads = 4;
  bench::print_banner("Out-of-core corpus: spill/merge engine", config);

  std::uint64_t budget_mib = 1;
  if (const char* raw = std::getenv("V6_BENCH_SPILL_MB")) {
    budget_mib = util::parse_dec_u64(raw).value_or(budget_mib);
  }

  core::Study study(config);
  netsim::PoolDns dns(study.world(), 0.25, config.pool_capture_share);

  // Reference: the whole corpus in one in-memory table.
  hitlist::PassiveCollector in_memory_collector(study.world(),
                                                study.plane(), dns,
                                                config.collector);
  hitlist::Corpus reference(1 << 16);
  const double in_memory_s =
      bench::timed_seconds("in-memory collection", [&] {
        in_memory_collector.run(reference, config.world.study_start,
                                config.world.study_start +
                                    config.world.study_duration);
      });

  // Out-of-core: same window, shard tables spill to sorted runs whenever
  // their combined footprint crosses the budget at a merge barrier.
  hitlist::SpillConfig spill;
  spill.memory_budget_bytes = budget_mib << 20;
  hitlist::TieredCorpus runs(spill);
  hitlist::PassiveCollector spilling_collector(study.world(),
                                               study.plane(), dns,
                                               config.collector);
  const double ingest_s = bench::timed_seconds(
      "out-of-core collection (" + std::to_string(budget_mib) +
          " MiB budget)",
      [&] {
        spilling_collector.run(runs, config.world.study_start,
                               config.world.study_start +
                                   config.world.study_duration);
      });
  const std::uint64_t observations = runs.total_observations();
  const std::uint64_t run_files = runs.run_count();
  const std::uint64_t spills = runs.stats().spills;

  // Merge throughput: one aggregating k-way pass over every run file.
  const std::uint64_t merge_input_bytes = runs.stats().disk_bytes;
  std::uint64_t merged_records = 0;
  const double merge_s = bench::timed_seconds(
      "k-way merge over " + std::to_string(run_files) + " runs",
      [&] { runs.for_each_merged([&](const auto&) { ++merged_records; }); });

  // On-disk footprint of the *corpus* (not the spill backlog): compact
  // to a single run so duplicate addresses across spills are aggregated,
  // then compare bytes per unique address against the in-memory table.
  bench::timed("compaction", [&] { runs.compact(); });
  const std::uint64_t disk_bytes = runs.stats().disk_bytes;
  const double disk_bpa =
      merged_records > 0
          ? static_cast<double>(disk_bytes) /
                static_cast<double>(merged_records)
          : 0.0;
  const double memory_bpa =
      reference.size() > 0
          ? static_cast<double>(reference.memory_bytes()) /
                static_cast<double>(reference.size())
          : 0.0;

  // The invariant everything above rests on: identical snapshot bytes.
  std::ostringstream from_memory, from_disk;
  hitlist::save_corpus(from_memory, reference);
  runs.save(from_disk);
  const bool identical = from_memory.str() == from_disk.str();

  const double ingest_rate =
      ingest_s > 0 ? static_cast<double>(observations) / ingest_s : 0.0;
  const double merge_rate =
      merge_s > 0 ? static_cast<double>(merged_records) / merge_s : 0.0;
  const double merge_mbps =
      merge_s > 0 ? static_cast<double>(merge_input_bytes) /
                        (merge_s * 1024.0 * 1024.0)
                  : 0.0;

  bench::Comparison comparison;
  comparison.row("unique addresses", "7.9B (paper)",
                 util::with_commas(merged_records));
  comparison.row("spills / run files", "-",
                 std::to_string(spills) + " / " +
                     std::to_string(run_files));
  comparison.row("ingest rate", "-",
                 util::with_commas(static_cast<std::uint64_t>(
                     ingest_rate)) +
                     " obs/s");
  comparison.row("merge rate", "-",
                 util::with_commas(static_cast<std::uint64_t>(
                     merge_rate)) +
                     " rec/s");
  comparison.row("disk bytes per address", "<= 8 (target)",
                 std::to_string(disk_bpa));
  comparison.row("in-memory bytes per address", "32 + index",
                 std::to_string(memory_bpa));
  comparison.row("snapshot bytes identical", "yes",
                 identical ? "yes" : "NO — DETERMINISM BUG");
  comparison.print();

  // The <= 8 target presumes structured IIDs. On this world most corpus
  // addresses are RFC 4941 privacy addresses whose random 64-bit IIDs
  // are incompressible, so the honest floor is ~1 (tag) + ~8 (IID) +
  // ~4 (first_seen) bytes; report the fraction so the JSON records why.
  std::uint64_t full_entropy = 0;
  reference.for_each([&](const hitlist::AddressRecord& rec) {
    if (rec.address.lo64() >= (std::uint64_t{1} << 56)) ++full_entropy;
  });
  const double full_entropy_share =
      reference.size() > 0 ? static_cast<double>(full_entropy) /
                                 static_cast<double>(reference.size())
                           : 0.0;
  std::printf("full-entropy IIDs (>= 2^56): %.1f%% of addresses — the\n"
              "<= 8 B/addr target is reachable only for structured-IID "
              "populations\n",
              100.0 * full_entropy_share);

  bench::BenchJson json = bench::scaled_bench_json("bench_corpus_spill");
  json.integer("spill_budget_mib", budget_mib);
  json.integer("unique_addresses", merged_records);
  json.integer("observations", observations);
  json.integer("spills", spills);
  json.integer("run_files", run_files);
  json.number("in_memory_collect_seconds", in_memory_s);
  json.number("out_of_core_collect_seconds", ingest_s);
  json.number("ingest_records_per_sec", ingest_rate);
  json.number("merge_seconds", merge_s);
  json.number("merge_records_per_sec", merge_rate);
  json.number("merge_mb_per_sec", merge_mbps);
  json.integer("disk_bytes", disk_bytes);
  json.number("disk_bytes_per_address", disk_bpa);
  json.number("in_memory_bytes_per_address", memory_bpa);
  json.number("full_entropy_iid_share", full_entropy_share);
  json.boolean("snapshot_bit_identical", identical);
  json.write("BENCH_corpus.json");

  return identical ? 0 : 1;
}
