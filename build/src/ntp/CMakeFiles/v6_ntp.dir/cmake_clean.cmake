file(REMOVE_RECURSE
  "CMakeFiles/v6_ntp.dir/client_schedule.cc.o"
  "CMakeFiles/v6_ntp.dir/client_schedule.cc.o.d"
  "CMakeFiles/v6_ntp.dir/server.cc.o"
  "CMakeFiles/v6_ntp.dir/server.cc.o.d"
  "libv6_ntp.a"
  "libv6_ntp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_ntp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
