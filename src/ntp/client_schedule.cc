#include "ntp/client_schedule.h"

#include <algorithm>

namespace v6::ntp {

ClientSchedule::ClientSchedule(const sim::Device& device,
                               util::SimTime window_start,
                               util::SimTime window_end) noexcept
    : device_(&device),
      start_(std::max(window_start, device.active_start)),
      end_(std::min(window_end, device.active_end)) {}

std::uint64_t ClientSchedule::count() const noexcept {
  std::uint64_t n = 0;
  for_each([&n](util::SimTime) { ++n; });
  return n;
}

}  // namespace v6::ntp
