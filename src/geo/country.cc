#include "geo/country.h"

#include <array>

namespace v6::geo {

std::optional<CountryCode> CountryCode::parse(std::string_view text) {
  if (text.size() != 2) return std::nullopt;
  const char a = text[0], b = text[1];
  const auto upper = [](char c) {
    return c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c;
  };
  const char ua = upper(a), ub = upper(b);
  if (ua < 'A' || ua > 'Z' || ub < 'A' || ub > 'Z') return std::nullopt;
  return CountryCode(ua, ub);
}

namespace {

// Client weights follow §3 of the paper: India, China, US, Brazil and
// Indonesia together account for 76% of observed addresses; 170 further
// countries share the remaining 24% with a heavy tail. Coordinates are
// rough population centroids (country-level accuracy is all the paper
// uses). The list is sorted by descending client_weight.
constexpr std::array<CountryInfo, 40> kCountries = {{
    {{'I', 'N'}, "India", 21.0, 78.0, 0.240},
    {{'C', 'N'}, "China", 34.0, 104.0, 0.200},
    {{'U', 'S'}, "United States", 39.0, -98.0, 0.150},
    {{'B', 'R'}, "Brazil", -10.0, -52.0, 0.089},
    {{'I', 'D'}, "Indonesia", -2.5, 118.0, 0.080},
    {{'D', 'E'}, "Germany", 51.0, 10.0, 0.034},
    {{'J', 'P'}, "Japan", 36.0, 138.0, 0.026},
    {{'G', 'B'}, "United Kingdom", 54.0, -2.0, 0.020},
    {{'F', 'R'}, "France", 46.0, 2.0, 0.017},
    {{'M', 'X'}, "Mexico", 23.0, -102.0, 0.015},
    {{'V', 'N'}, "Vietnam", 16.0, 108.0, 0.013},
    {{'T', 'H'}, "Thailand", 15.0, 101.0, 0.011},
    {{'I', 'T'}, "Italy", 42.5, 12.5, 0.010},
    {{'E', 'S'}, "Spain", 40.0, -4.0, 0.009},
    {{'P', 'L'}, "Poland", 52.0, 20.0, 0.008},
    {{'N', 'L'}, "Netherlands", 52.2, 5.3, 0.007},
    {{'K', 'R'}, "South Korea", 36.5, 127.8, 0.007},
    {{'T', 'W'}, "Taiwan", 23.7, 121.0, 0.006},
    {{'A', 'U'}, "Australia", -25.0, 134.0, 0.006},
    {{'C', 'A'}, "Canada", 56.0, -106.0, 0.005},
    {{'A', 'R'}, "Argentina", -34.0, -64.0, 0.005},
    {{'T', 'R'}, "Turkey", 39.0, 35.0, 0.004},
    {{'R', 'U'}, "Russia", 60.0, 90.0, 0.004},
    {{'P', 'H'}, "Philippines", 12.0, 122.0, 0.004},
    {{'M', 'Y'}, "Malaysia", 3.5, 102.0, 0.003},
    {{'S', 'E'}, "Sweden", 62.0, 15.0, 0.003},
    {{'C', 'H'}, "Switzerland", 47.0, 8.2, 0.003},
    {{'A', 'T'}, "Austria", 47.5, 14.5, 0.002},
    {{'B', 'E'}, "Belgium", 50.6, 4.6, 0.002},
    {{'C', 'Z'}, "Czechia", 49.8, 15.5, 0.002},
    {{'Z', 'A'}, "South Africa", -29.0, 24.0, 0.002},
    {{'S', 'G'}, "Singapore", 1.35, 103.8, 0.002},
    {{'H', 'K'}, "Hong Kong", 22.3, 114.2, 0.002},
    {{'L', 'U'}, "Luxembourg", 49.8, 6.1, 0.001},
    {{'B', 'G'}, "Bulgaria", 42.7, 25.5, 0.001},
    {{'B', 'H'}, "Bahrain", 26.0, 50.5, 0.001},
    {{'N', 'Z'}, "New Zealand", -41.0, 174.0, 0.001},
    {{'P', 'T'}, "Portugal", 39.5, -8.0, 0.001},
    {{'C', 'L'}, "Chile", -33.0, -71.0, 0.001},
    {{'E', 'G'}, "Egypt", 26.0, 30.0, 0.001},
}};

}  // namespace

std::span<const CountryInfo> all_countries() { return kCountries; }

CountryCode nearest_country(double latitude, double longitude) {
  // Squared Euclidean in (lat, lon) degrees is enough for centroid
  // attribution; ties break toward the more populous (earlier) country.
  double best = 1e18;
  CountryCode out;
  for (const auto& info : kCountries) {
    const double dlat = info.latitude - latitude;
    const double dlon = info.longitude - longitude;
    const double d = dlat * dlat + dlon * dlon;
    if (d < best) {
      best = d;
      out = info.code;
    }
  }
  return out;
}

const CountryInfo* find_country(CountryCode code) {
  for (const auto& info : kCountries) {
    if (info.code == code) return &info;
  }
  return nullptr;
}

}  // namespace v6::geo
