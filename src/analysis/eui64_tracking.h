// EUI-64 prevalence, tracking, and classification (§5.1, §5.2, Fig 6/7).
//
// Every EUI-64-shaped address in a corpus leaks its device's MAC address.
// The tracker aggregates those sightings per embedded MAC — across
// prefixes, ASes, and countries — and applies the paper's heuristics:
//   trackability gate:        appears in >= 2 distinct /64s
//   ASes > 1        -> "high AS"
//   countries > 1   -> "high country"
//   /64 changes > 10 -> "high transitions"
// classifying each MAC as mostly-static, prefix-reassignment, MAC-reuse,
// changing-providers, or user-movement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hitlist/corpus.h"
#include "net/mac.h"
#include "sim/world.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace v6::analysis {

enum class TrackingClass : std::uint8_t {
  kNotTrackable,       // never left its /64
  kMostlyStatic,       // low AS / low country / low transitions
  kPrefixReassignment, // one AS+country, many /64 transitions
  kMacReuse,           // multiple countries: several devices share the MAC
  kChangingProviders,  // multiple ASes, same country, few transitions
  kUserMovement,       // multiple ASes, same country, many transitions
};

const char* to_string(TrackingClass c) noexcept;

struct MacTrack {
  net::MacAddress mac;
  std::uint32_t slash64s = 0;     // distinct /64s the MAC appeared in
  std::uint32_t ases = 0;         // distinct origin ASes
  std::uint32_t countries = 0;    // distinct (true) countries
  std::uint32_t transitions = 0;  // /64 changes in first-seen order
  std::uint32_t first_seen = 0;
  std::uint32_t last_seen = 0;

  util::SimDuration lifetime() const noexcept {
    return static_cast<util::SimDuration>(last_seen) - first_seen;
  }
};

// One sighting on a MAC's timeline, for the Fig 7 exemplar plots.
struct TimelinePoint {
  std::uint32_t first_seen = 0;
  std::uint64_t slash64_hi = 0;
  sim::Asn asn = 0;
  geo::CountryCode country;
};

class Eui64Tracker {
 public:
  // Scans the corpus once; `world` supplies address->AS/country mapping
  // (the paper used BGP tables and MaxMind for the same purpose).
  Eui64Tracker(const hitlist::Corpus& corpus, const sim::World& world);

  // §5.1 prevalence.
  std::uint64_t eui64_addresses() const noexcept { return eui64_addresses_; }
  std::uint64_t corpus_addresses() const noexcept { return corpus_addresses_; }
  // Apparent-EUI-64 false positives expected from random IIDs: N / 2^16.
  std::uint64_t expected_random_matches() const noexcept {
    return corpus_addresses_ >> 16;
  }
  std::uint64_t unique_macs() const noexcept { return tracks_.size(); }

  std::span<const MacTrack> tracks() const noexcept { return tracks_; }

  static TrackingClass classify(const MacTrack& track) noexcept;

  // MACs appearing in >= 2 /64s (the paper's 8.7%).
  std::uint64_t trackable_macs() const;
  // Histogram over TrackingClass among trackable MACs.
  std::vector<std::pair<TrackingClass, std::uint64_t>> class_counts() const;

  // Fig 6a: lifetime of each EUI-64 IID (== each MAC).
  util::EmpiricalDistribution lifetime_distribution() const;
  // Fig 6b: CCDF points (n, fraction of MACs in > n /64s).
  std::vector<std::pair<std::uint32_t, double>> slash64_ccdf(
      std::span<const std::uint32_t> points) const;

  // The sighting timeline of one MAC (first-seen ordered).
  std::vector<TimelinePoint> timeline(const net::MacAddress& mac) const;

  // A representative exemplar MAC for each class, if one exists (Fig 7).
  std::vector<std::pair<TrackingClass, net::MacAddress>> exemplars() const;

 private:
  const sim::World* world_;
  std::uint64_t corpus_addresses_ = 0;
  std::uint64_t eui64_addresses_ = 0;
  std::vector<MacTrack> tracks_;
  // Sightings sorted by (mac, first_seen); index range per track.
  std::vector<TimelinePoint> sightings_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;  // per track
};

}  // namespace v6::analysis
