#include "hitlist/corpus.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>

#include "kernels/batch.h"

namespace v6::hitlist {

namespace {

// Hostile or merely optimistic `expected_addresses` values must not let a
// constructor allocate unbounded memory up front; growth is amortized
// doubling past this point anyway.
constexpr std::size_t kMaxEagerReserve = std::size_t{1} << 20;

// Records hashed per batch-kernel call on the insert/rebuild paths.
constexpr std::size_t kHashChunk = 1024;

// The batch hash kernel walks the address bytes of a record array with a
// byte stride, which requires the address to sit at offset 0 and the
// Ipv6Address representation to be exactly its 16 raw bytes.
static_assert(sizeof(net::Ipv6Address) == 16);
static_assert(offsetof(AddressRecord, address) == 0);

const std::uint8_t* address_bytes(const AddressRecord* rec) noexcept {
  return reinterpret_cast<const std::uint8_t*>(rec);
}

}  // namespace

std::size_t Corpus::index_capacity_for(std::size_t expected) noexcept {
  std::size_t cap = 64;
  // Keep the load factor at or below ~0.66: grow while 3 * expected >
  // 2 * cap, phrased without multiplication so paper-scale `expected`
  // (> SIZE_MAX / 3) cannot wrap. cap - cap / 3 == floor(2 * cap / 3) + 1
  // for the power-of-two capacities this loop visits (never divisible by
  // 3), so the comparison is exact.
  while (expected >= cap - cap / 3) {
    if (cap > (std::numeric_limits<std::size_t>::max() >> 1)) break;
    cap <<= 1;
  }
  return cap;
}

Corpus::Corpus(std::size_t expected_addresses) {
  const std::size_t eager = std::min(expected_addresses, kMaxEagerReserve);
  records_.reserve(eager);
  const std::size_t cap = index_capacity_for(eager);
  index_.assign(cap, kEmptySlot);
  index_mask_ = cap - 1;
}

Corpus::Corpus(Corpus&& other) noexcept
    : records_(std::move(other.records_)),
      index_(std::move(other.index_)),
      index_mask_(other.index_mask_),
      observations_(other.observations_) {
  other.records_.clear();
  other.index_.clear();
  other.index_mask_ = 0;
  other.observations_ = 0;
}

Corpus& Corpus::operator=(Corpus&& other) noexcept {
  if (this != &other) {
    records_ = std::move(other.records_);
    index_ = std::move(other.index_);
    index_mask_ = other.index_mask_;
    observations_ = other.observations_;
    other.records_.clear();
    other.index_.clear();
    other.index_mask_ = 0;
    other.observations_ = 0;
  }
  return *this;
}

std::uint32_t* Corpus::lookup_slot(const net::Ipv6Address& address) noexcept {
  return lookup_slot(address, net::Ipv6AddressHash{}(address));
}

std::uint32_t* Corpus::lookup_slot(const net::Ipv6Address& address,
                                   std::uint64_t hash) noexcept {
  std::size_t i = static_cast<std::size_t>(hash) & index_mask_;
  while (true) {
    std::uint32_t& slot = index_[i];
    if (slot == kEmptySlot || records_[slot].address == address) return &slot;
    i = (i + 1) & index_mask_;
  }
}

void Corpus::revive_if_moved_from() {
  if (index_.empty()) {
    index_.assign(64, kEmptySlot);
    index_mask_ = 63;
  }
}

void Corpus::add(const net::Ipv6Address& address, util::SimTime t,
                 std::uint8_t vantage) {
  // Clamp into u32 seconds, saturating at both ends: truncation would
  // wrap times >= 2^32 and corrupt first_seen/last_seen ordering.
  const auto ts = static_cast<std::uint32_t>(std::clamp<util::SimTime>(
      t, 0, std::numeric_limits<std::uint32_t>::max()));
  // Clamp into the mask: vantages past the width share bit 31 (see the
  // vantage_mask contract in the header).
  const std::uint32_t vantage_bit =
      1u << std::min<std::uint8_t>(vantage, 31);
  revive_if_moved_from();
  ++observations_;
  std::uint32_t* slot = lookup_slot(address);
  if (*slot == kEmptySlot) {
    // Division form of `(size + 1) * 3 > capacity * 2`, which wraps for
    // tables within a factor of 3 of SIZE_MAX (cap - cap / 3 ==
    // floor(2 * cap / 3) + 1 for power-of-two capacities).
    if (records_.size() + 1 >= index_.size() - index_.size() / 3) {
      grow_index();
      slot = lookup_slot(address);
    }
    if (records_.size() >= kEmptySlot) {
      throw std::length_error("corpus: record id space exhausted");
    }
    *slot = static_cast<std::uint32_t>(records_.size());
    AddressRecord rec;
    rec.address = address;
    rec.first_seen = ts;
    rec.last_seen = ts;
    rec.count = 1;
    rec.vantage_mask = vantage_bit;
    records_.push_back(rec);
    return;
  }
  AddressRecord& rec = records_[*slot];
  rec.first_seen = std::min(rec.first_seen, ts);
  rec.last_seen = std::max(rec.last_seen, ts);
  ++rec.count;
  rec.vantage_mask |= vantage_bit;
}

void Corpus::merge_record_hashed(const AddressRecord& incoming,
                                 std::uint64_t hash) {
  std::uint32_t* slot = lookup_slot(incoming.address, hash);
  if (*slot == kEmptySlot) {
    if (records_.size() + 1 >= index_.size() - index_.size() / 3) {
      grow_index();
      slot = lookup_slot(incoming.address, hash);
    }
    if (records_.size() >= kEmptySlot) {
      throw std::length_error("corpus: record id space exhausted");
    }
    *slot = static_cast<std::uint32_t>(records_.size());
    records_.push_back(incoming);
  } else {
    AddressRecord& rec = records_[*slot];
    rec.first_seen = std::min(rec.first_seen, incoming.first_seen);
    rec.last_seen = std::max(rec.last_seen, incoming.last_seen);
    rec.count += incoming.count;
    rec.vantage_mask |= incoming.vantage_mask;
  }
}

void Corpus::add_record(const AddressRecord& incoming) {
  revive_if_moved_from();
  merge_record_hashed(incoming, net::Ipv6AddressHash{}(incoming.address));
  observations_ += incoming.count;
}

void Corpus::add_block(std::span<const AddressRecord> block) {
  revive_if_moved_from();
  std::uint64_t hashes[kHashChunk];
  for (std::size_t base = 0; base < block.size(); base += kHashChunk) {
    const std::size_t n = std::min(kHashChunk, block.size() - base);
    kernels::ipv6_hash_batch(address_bytes(block.data() + base),
                             sizeof(AddressRecord), n, hashes);
    for (std::size_t i = 0; i < n; ++i) {
      const AddressRecord& incoming = block[base + i];
      merge_record_hashed(incoming, hashes[i]);
      observations_ += incoming.count;
    }
  }
}

void Corpus::merge(const Corpus& other) {
  other.for_each_block(
      [this](std::span<const AddressRecord> block) { add_block(block); });
}

const AddressRecord* Corpus::find(
    const net::Ipv6Address& address) const noexcept {
  if (index_.empty()) return nullptr;  // moved-from
  std::size_t i = net::Ipv6AddressHash{}(address) & index_mask_;
  while (true) {
    const std::uint32_t slot = index_[i];
    if (slot == kEmptySlot) return nullptr;
    if (records_[slot].address == address) return &records_[slot];
    i = (i + 1) & index_mask_;
  }
}

void Corpus::canonicalize() {
  if (records_.empty()) return;
  std::sort(records_.begin(), records_.end(),
            [](const AddressRecord& a, const AddressRecord& b) {
              return a.address < b.address;
            });
  rebuild_index(index_.size());
}

void Corpus::rebuild_index(std::size_t capacity) {
  index_.assign(capacity, kEmptySlot);
  index_mask_ = capacity - 1;
  // Addresses are unique here, so insertion is probe-and-place with the
  // hashes computed a block at a time by the batch kernel.
  std::uint64_t hashes[kHashChunk];
  for (std::size_t base = 0; base < records_.size(); base += kHashChunk) {
    const std::size_t n = std::min(kHashChunk, records_.size() - base);
    kernels::ipv6_hash_batch(address_bytes(records_.data() + base),
                             sizeof(AddressRecord), n, hashes);
    for (std::size_t r = 0; r < n; ++r) {
      std::size_t i = static_cast<std::size_t>(hashes[r]) & index_mask_;
      while (index_[i] != kEmptySlot) i = (i + 1) & index_mask_;
      index_[i] = static_cast<std::uint32_t>(base + r);
    }
  }
}

void Corpus::grow_index() { rebuild_index(index_.size() * 2); }

}  // namespace v6::hitlist
