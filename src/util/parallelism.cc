#include "util/parallelism.h"

#include "util/thread_pool.h"

namespace v6::util {

unsigned Parallelism::resolved() const noexcept {
  return threads == 0 ? ThreadPool::hardware_threads() : threads;
}

}  // namespace v6::util
