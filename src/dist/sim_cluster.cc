#include "dist/sim_cluster.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "dist/obs_report.h"
#include "hitlist/checkpoint_io.h"

#include "util/rng.h"

namespace v6::dist {

namespace {

// Same raw-draw-to-[0,1) mapping as util::Rng::uniform(), applied to a
// pure hash so the reassignment jitter never consumes an RNG stream.
double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

hitlist::Corpus clone(const hitlist::Corpus& src) {
  hitlist::Corpus out(std::max<std::size_t>(src.size(), 1));
  src.for_each([&out](const hitlist::AddressRecord& r) { out.add_record(r); });
  return out;
}

std::string checkpoint_path(std::uint32_t subset, std::uint32_t epoch,
                            std::uint64_t resume_from) {
  return "ckpt/s" + std::to_string(subset) + "-e" + std::to_string(epoch) +
         "-t" + std::to_string(resume_from) + ".v6ckpt";
}

// Lease-aborting events, thrown out of the checkpoint sink.
struct WorkerDied {
  util::SimTime at;
};
struct LeaseRevoked {
  util::SimTime revoked_at;
  util::SimTime wake;
};

// Appends frames to the log with per-sender strictly-increasing seqs (the
// invariant lint_dist_frames enforces).
class Emitter {
 public:
  explicit Emitter(std::vector<std::uint8_t>* log) : log_(log) {}

  void emit(FrameType type, std::uint32_t sender, std::uint32_t subset,
            std::uint32_t epoch, std::uint64_t sim_time,
            std::vector<std::uint8_t> payload = {}) {
    Frame frame;
    frame.type = type;
    frame.sender = sender;
    frame.subset = subset;
    frame.epoch = epoch;
    frame.seq = seq_[sender]++;
    frame.sim_time = sim_time;
    frame.payload = std::move(payload);
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    log_->insert(log_->end(), bytes.begin(), bytes.end());
  }

 private:
  std::vector<std::uint8_t>* log_;
  std::map<std::uint32_t, std::uint64_t> seq_;
};

struct WorkerState {
  std::uint32_t id = 0;
  util::SimTime free_at = 0;
  bool alive = true;
  bool said_hello = false;
};

struct SubsetState {
  std::uint32_t id = 0;
  bool done = false;
  util::SimTime available_at = 0;
  std::uint32_t epoch = 0;
  std::uint32_t retries = 0;
  // Failure instant awaiting its recovery grant (for latency accounting).
  std::optional<util::SimTime> failed_at;
  std::optional<hitlist::CollectionCheckpoint> ckpt;
  hitlist::Corpus final_corpus{1};
  std::uint64_t polls = 0;
  std::uint64_t answered = 0;
  std::vector<hitlist::VantageHealthStats> health;
};

}  // namespace

SimCluster::SimCluster(const sim::World& world, netsim::DataPlane& plane,
                       const netsim::PoolDns& dns,
                       const hitlist::CollectorConfig& collector_cfg,
                       const DistConfig& config,
                       netsim::WorkerFaultSchedule* faults,
                       obs::Registry* registry, obs::TimelineSampler* sampler)
    : world_(&world),
      plane_(&plane),
      dns_(&dns),
      collector_cfg_(collector_cfg),
      config_(config),
      faults_(faults),
      registry_(registry),
      sampler_(sampler) {
  if (config_.workers == 0) {
    throw std::invalid_argument("SimCluster: at least one worker");
  }
  if (config_.chunk_interval <= 0) {
    throw std::invalid_argument("SimCluster: chunk_interval must be > 0");
  }
  if (collector_cfg_.wire_fidelity) {
    // The wire path serializes every poll through the shared DataPlane's
    // mutable state; per-subset re-runs would each consume it and
    // diverge. Fail loudly instead of silently losing bit-identity.
    throw std::invalid_argument(
        "SimCluster: wire_fidelity collection cannot be distributed");
  }
}

DistReport SimCluster::run(hitlist::Corpus& out, util::SimTime start,
                           util::SimTime end) {
  const std::uint32_t subset_count =
      config_.subsets != 0 ? config_.subsets
                           : std::max<std::uint32_t>(1, config_.workers);
  netsim::WorkerFaultSchedule local_plan =
      config_.worker_faults.active()
          ? netsim::WorkerFaultSchedule(config_.workers, config_.worker_faults,
                                        start, end)
          : netsim::WorkerFaultSchedule(config_.workers);
  if (config_.forced_kills > 0) {
    // Exactly K kills at evenly staggered lane times (see DistConfig).
    const std::uint32_t kills =
        std::min(config_.forced_kills, config_.workers);
    for (std::uint32_t w = 0; w < kills; ++w) {
      const util::SimTime at =
          start + (end - start) * static_cast<util::SimDuration>(w + 1) /
                      static_cast<util::SimDuration>(kills + 1);
      local_plan.set_kill(w, at);
    }
  }
  netsim::WorkerFaultSchedule* plan = faults_ != nullptr ? faults_ : &local_plan;

  DistReport report;
  report.subsets = subset_count;
  report.workers = config_.workers;
  Emitter wire(&report.frame_log);

  const auto counter = [this](std::string_view name, std::string_view help,
                              obs::Labels labels = {}) {
    return registry_->counter(name, help, std::move(labels));
  };
  const auto worker_labels = [](std::uint32_t w) {
    return obs::Labels{{"worker", std::to_string(w)}};
  };
  const auto set_alive = [&](std::uint32_t w, double v) {
    if (registry_ == nullptr) return;
    registry_
        ->gauge("v6_dist_worker_alive", "1 while the worker process lives",
                worker_labels(w))
        .set(v);
  };

  std::vector<WorkerState> workers(config_.workers);
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    workers[w] = WorkerState{w, start, true, false};
    set_alive(w, 1.0);
  }
  std::uint32_t next_worker_id = config_.workers;

  std::vector<SubsetState> subsets(subset_count);
  for (std::uint32_t s = 0; s < subset_count; ++s) {
    subsets[s].id = s;
    subsets[s].available_at = start;
  }

  const auto backoff_until = [&](const SubsetState& ss,
                                 util::SimTime from) -> util::SimTime {
    // Capped exponential backoff with seeded jitter: retry r waits
    // min(cap, backoff * 2^(r-1)) stretched by up to retry_jitter of
    // itself. Pure hash -> deterministic at any scheduling order.
    const std::uint32_t r = std::max<std::uint32_t>(ss.retries, 1);
    util::SimDuration base = config_.retry_backoff;
    for (std::uint32_t i = 1; i < r && base < config_.retry_cap; ++i) {
      base *= 2;
    }
    base = std::min(base, config_.retry_cap);
    const double jitter =
        config_.retry_jitter *
        unit(util::mix64(config_.seed ^ 0xba2c0ffu ^
                         util::mix64((static_cast<std::uint64_t>(ss.id) << 32) |
                                     r)));
    return from + base +
           static_cast<util::SimDuration>(static_cast<double>(base) * jitter);
  };

  const auto kill_worker = [&](WorkerState& wk, util::SimTime at) {
    wk.alive = false;
    ++report.worker_deaths;
    set_alive(wk.id, 0.0);
    if (registry_ != nullptr) {
      counter("v6_dist_worker_deaths_total", "Worker processes that died")
          .inc();
    }
    if (config_.respawn) {
      // The coordinator notices the death one heartbeat timeout after the
      // last heartbeat and provisions a replacement after respawn_delay.
      WorkerState fresh;
      fresh.id = next_worker_id++;
      fresh.free_at = at + config_.heartbeat_timeout + config_.respawn_delay;
      workers.push_back(fresh);
      ++report.workers;
      set_alive(fresh.id, 1.0);
    }
  };

  const std::size_t vantage_count = world_->vantages().size();

  while (true) {
    bool all_done = true;
    for (const SubsetState& ss : subsets) {
      if (!ss.done) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;

    // Earliest-start pairing, tie-broken by subset then worker id — a
    // deterministic event loop, not a heuristic scheduler.
    SubsetState* best_ss = nullptr;
    WorkerState* best_wk = nullptr;
    util::SimTime best_g = 0;
    for (SubsetState& ss : subsets) {
      if (ss.done) continue;
      for (WorkerState& wk : workers) {
        if (!wk.alive) continue;
        const util::SimTime g = std::max(ss.available_at, wk.free_at);
        if (const auto k = plan->kill_at(wk.id); k && *k <= g) continue;
        if (best_ss == nullptr || g < best_g ||
            (g == best_g && (ss.id < best_ss->id ||
                             (ss.id == best_ss->id && wk.id < best_wk->id)))) {
          best_ss = &ss;
          best_wk = &wk;
          best_g = g;
        }
      }
    }
    if (best_ss == nullptr) {
      // Every live worker is fated to die before it could start: process
      // the earliest planned death (which may respawn a replacement).
      WorkerState* doomed = nullptr;
      util::SimTime doom = 0;
      for (WorkerState& wk : workers) {
        if (!wk.alive) continue;
        if (const auto k = plan->kill_at(wk.id);
            k && (doomed == nullptr || *k < doom)) {
          doomed = &wk;
          doom = *k;
        }
      }
      if (doomed == nullptr) {
        throw std::runtime_error(
            "distributed collection stalled: every worker died and respawn "
            "is disabled");
      }
      kill_worker(*doomed, doom);
      continue;
    }

    SubsetState& ss = *best_ss;
    WorkerState& wk = *best_wk;
    const util::SimTime g = best_g;

    // --- grant ------------------------------------------------------------
    ++report.leases_granted;
    if (registry_ != nullptr) {
      counter("v6_dist_leases_total", "Chunk leases granted",
              worker_labels(wk.id))
          .inc();
    }
    if (!wk.said_hello) {
      wk.said_hello = true;
      wire.emit(FrameType::kHello, wk.id, kNoSubset, 0,
                static_cast<std::uint64_t>(g));
    }
    hitlist::CheckpointState from;
    if (ss.ckpt) {
      from = ss.ckpt->state;
    } else {
      from.window_start = start;
      from.window_end = end;
      from.resume_from = start;
    }
    if (ss.failed_at) {
      report.recovery_latency_total +=
          static_cast<std::uint64_t>(g - *ss.failed_at);
      ss.failed_at.reset();
      // Recovery becomes a timeline window: the grant closes a
      // "dist.recover" window at the cluster instant work restarted.
      if (sampler_ != nullptr) {
        sampler_->sample(g, "dist.recover");
      }
    }
    if (from.resume_from > from.window_start) {
      const std::uint64_t replayed = static_cast<std::uint64_t>(
          (from.resume_from - from.window_start) / config_.chunk_interval);
      report.replayed_chunks += replayed;
      if (registry_ != nullptr) {
        counter("v6_dist_replayed_chunks_total",
                "Already-checkpointed chunks replayed by recovery leases")
            .inc(replayed);
      }
    }
    LeaseGrant grant;
    grant.window_start = static_cast<std::uint64_t>(start);
    grant.window_end = static_cast<std::uint64_t>(end);
    grant.chunk_interval = static_cast<std::uint64_t>(config_.chunk_interval);
    grant.resume_from = static_cast<std::uint64_t>(from.resume_from);
    grant.subset_count = subset_count;
    if (ss.ckpt) {
      grant.checkpoint_path = checkpoint_path(
          ss.id, ss.epoch, static_cast<std::uint64_t>(from.resume_from));
    }
    wire.emit(FrameType::kLeaseGrant, kCoordinatorId, ss.id, ss.epoch,
              static_cast<std::uint64_t>(g), encode_lease_grant(grant));

    // --- the lease itself -------------------------------------------------
    // Per-lease observability: a private registry + sampler whose grid
    // coincides with the checkpoint grid (same interval, same origin), so
    // wiring them adds no merge barriers and perturbs neither the corpus
    // nor the frame schedule. Aborted leases discard the pair; only the
    // completing lease's report is uploaded.
    obs::Registry lease_registry;
    obs::TimelineSampler lease_sampler(lease_registry, config_.chunk_interval,
                                       from.window_start);
    hitlist::CollectorConfig cfg = collector_cfg_;
    cfg.metrics = &lease_registry;
    cfg.sampler = &lease_sampler;
    cfg.checkpoint_interval = config_.chunk_interval;
    cfg.vantage_filter.assign(vantage_count, false);
    for (std::size_t v = 0; v < vantage_count; ++v) {
      cfg.vantage_filter[v] = (v % subset_count == ss.id);
    }
    cfg.count_unassigned = (ss.id == 0);

    hitlist::Corpus corpus =
        ss.ckpt ? clone(ss.ckpt->corpus) : hitlist::Corpus(1 << 12);
    hitlist::PassiveCollector collector(*world_, *plane_, *dns_, cfg);

    const std::optional<util::SimTime> kill = plan->kill_at(wk.id);
    // Lane clock: where this worker's process is on the cluster clock.
    util::SimTime lane = g;
    util::SimTime prev = from.resume_from;

    // Advances the lane over the chunk ending at `to`, applying slow
    // windows, and throws if the worker dies or stalls out on the way.
    const auto advance_to = [&](util::SimTime to) {
      const double cost_factor = plan->cost_factor(wk.id, lane);
      const auto cost = static_cast<util::SimDuration>(
          static_cast<double>(to - prev) * cost_factor);
      util::SimTime t_new = lane + std::max<util::SimDuration>(cost, 0);
      if (kill && *kill <= t_new) throw WorkerDied{*kill};
      if (plan->stalled(wk.id, t_new)) {
        const util::SimTime wake = plan->stall_end(wk.id, t_new);
        if (kill && *kill <= wake) throw WorkerDied{*kill};
        // A healthy worker heartbeats continuously, so silence starts at
        // the stall window's start; outlasting the timeout means the
        // coordinator already revoked the lease under it.
        util::SimTime stall_start = t_new;
        for (const netsim::OutageWindow& w :
             plan->windows(static_cast<std::uint8_t>(wk.id))) {
          if (t_new >= w.start && t_new < w.end) {
            stall_start = w.start;
            break;
          }
        }
        if (wake - stall_start > config_.heartbeat_timeout) {
          throw LeaseRevoked{stall_start + config_.heartbeat_timeout, wake};
        }
        t_new = wake;
      }
      lane = t_new;
      prev = to;
    };

    const auto sink = [&](const hitlist::CheckpointState& state,
                          const hitlist::Corpus& snapshot) {
      advance_to(state.resume_from);
      // Durable: the coordinator holds the (state, corpus) pair; a later
      // recovery lease resumes from exactly this instant.
      ss.ckpt = hitlist::CollectionCheckpoint{state, clone(snapshot)};
      wire.emit(FrameType::kHeartbeat, wk.id, ss.id, ss.epoch,
                static_cast<std::uint64_t>(lane));
      ++report.heartbeats;
      Artifact artifact;
      artifact.path = checkpoint_path(
          ss.id, ss.epoch, static_cast<std::uint64_t>(state.resume_from));
      artifact.bytes = snapshot.total_observations();
      wire.emit(FrameType::kCheckpointUpload, wk.id, ss.id, ss.epoch,
                static_cast<std::uint64_t>(lane), encode_artifact(artifact));
      ++report.checkpoints_uploaded;
      if (registry_ != nullptr) {
        counter("v6_dist_uploads_total", "Durable checkpoint uploads",
                worker_labels(wk.id))
            .inc();
      }
    };

    try {
      // Replaying the checkpointed prefix is cheaper than collecting but
      // not free; the process can die mid-replay too.
      if (from.resume_from > from.window_start) {
        lane += static_cast<util::SimDuration>(
            config_.replay_cost *
            static_cast<double>(from.resume_from - from.window_start));
        if (kill && *kill <= lane) throw WorkerDied{*kill};
      }
      collector.resume(corpus, from, {}, sink);
      // The final partial chunk has no interior boundary; its upload is
      // the completion itself, and death or a stall-out on the way still
      // aborts the lease.
      advance_to(end);
      ss.done = true;
      ss.final_corpus = std::move(corpus);
      ss.polls = collector.polls_attempted();
      ss.answered = collector.polls_answered();
      ss.health = collector.vantage_health();
      // Close the lease's final window (the collector leaves the
      // window-end sample to the caller) and upload the observability
      // report at the completion barrier, just before kComplete.
      lease_sampler.sample(static_cast<util::SimTime>(end), cfg.sampler_stage);
      ObsReport obs_report = build_obs_report(collector, lease_sampler.take());
      wire.emit(FrameType::kObsReport, wk.id, ss.id, ss.epoch,
                static_cast<std::uint64_t>(lane),
                encode_obs_report(obs_report));
      report.cluster_obs.add_worker(wk.id, ss.id,
                                    std::move(obs_report.snapshot),
                                    std::move(obs_report.windows));
      Artifact artifact;
      artifact.path =
          checkpoint_path(ss.id, ss.epoch, static_cast<std::uint64_t>(end));
      artifact.bytes = ss.final_corpus.total_observations();
      wire.emit(FrameType::kComplete, wk.id, ss.id, ss.epoch,
                static_cast<std::uint64_t>(lane), encode_artifact(artifact));
      wk.free_at = lane;
      report.finished_at = std::max(report.finished_at, lane);
    } catch (const WorkerDied& died) {
      // Heartbeat silence from the death instant; detection one timeout
      // later; the lease is reassigned after backoff. Work since the last
      // durable upload is gone — and that is fine, the replacement
      // replays it from ss.ckpt.
      ++report.timeouts;
      ++report.reassignments;
      if (registry_ != nullptr) {
        counter("v6_dist_timeouts_total", "Heartbeat timeouts fired",
                worker_labels(wk.id))
            .inc();
        counter("v6_dist_reassignments_total", "Lease reassignments",
                obs::Labels{{"subset", std::to_string(ss.id)}})
            .inc();
      }
      const util::SimTime detected = died.at + config_.heartbeat_timeout;
      kill_worker(wk, died.at);
      ++ss.epoch;
      ++ss.retries;
      ss.available_at = backoff_until(ss, detected);
      ss.failed_at = died.at;
    } catch (const LeaseRevoked& revoked) {
      // The worker stalled past the timeout: the coordinator fenced the
      // lease off (epoch bump) while the worker slept. Its upload on
      // waking carries the stale epoch and bounces — the zombie cannot
      // double-count anything.
      ++report.timeouts;
      ++report.reassignments;
      ++report.stale_uploads_rejected;
      if (registry_ != nullptr) {
        counter("v6_dist_timeouts_total", "Heartbeat timeouts fired",
                worker_labels(wk.id))
            .inc();
        counter("v6_dist_reassignments_total", "Lease reassignments",
                obs::Labels{{"subset", std::to_string(ss.id)}})
            .inc();
        counter("v6_dist_stale_uploads_total",
                "Uploads rejected by epoch fencing")
            .inc();
      }
      wire.emit(FrameType::kRevoke, kCoordinatorId, ss.id, ss.epoch,
                static_cast<std::uint64_t>(revoked.revoked_at));
      Artifact stale;
      stale.path = checkpoint_path(ss.id, ss.epoch,
                                   static_cast<std::uint64_t>(prev));
      wire.emit(FrameType::kCheckpointUpload, wk.id, ss.id, ss.epoch,
                static_cast<std::uint64_t>(revoked.wake),
                encode_artifact(stale));
      ++ss.epoch;
      ++ss.retries;
      ss.available_at = backoff_until(ss, revoked.revoked_at);
      ss.failed_at = revoked.revoked_at;
      wk.free_at = revoked.wake;
    }
  }

  wire.emit(FrameType::kShutdown, kCoordinatorId, kNoSubset, 0,
            static_cast<std::uint64_t>(report.finished_at));

  // --- deterministic merge ------------------------------------------------
  // Corpus aggregation is commutative and the subsets are disjoint, so
  // this is the same reduce the sharded single-process run performs.
  report.vantage_health.resize(vantage_count);
  for (SubsetState& ss : subsets) {
    out.merge(ss.final_corpus);
    report.polls_attempted += ss.polls;
    report.polls_answered += ss.answered;
    for (std::size_t v = 0; v < ss.health.size() && v < vantage_count; ++v) {
      report.vantage_health[v].polls += ss.health[v].polls;
      report.vantage_health[v].answered += ss.health[v].answered;
      report.vantage_health[v].lost_to_fault += ss.health[v].lost_to_fault;
      report.vantage_health[v].retries += ss.health[v].retries;
      report.vantage_health[v].steered_polls += ss.health[v].steered_polls;
    }
  }
  out.canonicalize();

  if (registry_ != nullptr) {
    // Collector-family totals, bulk-added post-merge exactly like the
    // single-process collector's merge-time flush. The records counter is
    // dedup-aware (union size), matching the single-process exposition.
    counter("v6_collector_polls_total",
            "NTP poll packets attempted by pool clients")
        .inc(report.polls_attempted);
    counter("v6_collector_answered_total",
            "Poll attempts whose response passed client-side validation")
        .inc(report.polls_answered);
    counter("v6_collector_records_total",
            "Unique client addresses admitted to the corpus")
        .inc(out.size());
    counter("v6_collector_dedup_hits_total",
            "Observations folded into an existing corpus record")
        .inc(out.total_observations() -
             std::min<std::uint64_t>(out.total_observations(), out.size()));
    counter("v6_dist_heartbeats_total", "Worker heartbeats received")
        .inc(report.heartbeats);
    for (std::size_t v = 0; v < vantage_count; ++v) {
      const obs::Labels labels{{"vantage", std::to_string(v)}};
      counter(obs::kVantagePollsFamily,
              "Recorded poll packets steered to this vantage", labels)
          .inc(report.vantage_health[v].polls);
      counter(obs::kVantageAnsweredFamily,
              "Poll attempts this vantage answered past client validation",
              labels)
          .inc(report.vantage_health[v].answered);
      counter(obs::kVantageFaultLostFamily,
              "Poll attempts the fault plan swallowed at this vantage",
              labels)
          .inc(report.vantage_health[v].lost_to_fault);
    }
  }
  return report;
}

}  // namespace v6::dist
