// Manufacturer resolution of EUI-64-embedded MACs (Table 2).
//
// Each embedded MAC's OUI is looked up in the (synthetic) IEEE registry;
// unresolvable OUIs land in the "Unlisted" bucket, which the paper found to
// be — surprisingly — the largest one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/eui64_tracking.h"
#include "sim/oui_registry.h"

namespace v6::analysis {

struct ManufacturerRow {
  std::string name;  // "Unlisted" for unregistered OUIs
  std::uint64_t mac_count = 0;
};

// Counts unique MACs per manufacturer, descending; `top` rows plus an
// aggregated remainder row ("(other)") when more exist.
std::vector<ManufacturerRow> manufacturer_table(
    std::span<const MacTrack> tracks, const sim::OuiRegistry& registry,
    std::size_t top);

// Distinct unregistered OUIs that appear in exactly one MAC — the paper's
// estimate of random IIDs masquerading as EUI-64.
std::uint64_t single_mac_unlisted_ouis(std::span<const MacTrack> tracks,
                                       const sim::OuiRegistry& registry);

}  // namespace v6::analysis
