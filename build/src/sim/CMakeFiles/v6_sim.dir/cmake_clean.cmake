file(REMOVE_RECURSE
  "CMakeFiles/v6_sim.dir/addressing.cc.o"
  "CMakeFiles/v6_sim.dir/addressing.cc.o.d"
  "CMakeFiles/v6_sim.dir/as_profile.cc.o"
  "CMakeFiles/v6_sim.dir/as_profile.cc.o.d"
  "CMakeFiles/v6_sim.dir/device.cc.o"
  "CMakeFiles/v6_sim.dir/device.cc.o.d"
  "CMakeFiles/v6_sim.dir/feistel.cc.o"
  "CMakeFiles/v6_sim.dir/feistel.cc.o.d"
  "CMakeFiles/v6_sim.dir/oui_registry.cc.o"
  "CMakeFiles/v6_sim.dir/oui_registry.cc.o.d"
  "CMakeFiles/v6_sim.dir/world.cc.o"
  "CMakeFiles/v6_sim.dir/world.cc.o.d"
  "libv6_sim.a"
  "libv6_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
