# Enforced-budget spill gate, run as a CTest job: the CLI studies the
# same world twice — unlimited memory, then a 1 MiB collection budget
# that forces many on-disk runs — and the two saved corpus snapshots
# must be byte-identical. This is the out-of-core engine's headline
# invariant checked end to end through the real binary, not a test
# harness. Expects -DCLI=<path to v6pool_cli> and -DWORK=<scratch dir>.
if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "spill_identity.cmake needs -DCLI= and -DWORK=")
endif()

file(MAKE_DIRECTORY "${WORK}")
set(common study --sites 400 --days 10 --threads 4 --seed 97)

execute_process(
  COMMAND ${CLI} ${common} --save-corpus ${WORK}/in_memory.corpus
  RESULT_VARIABLE in_memory_rc OUTPUT_QUIET)
if(NOT in_memory_rc EQUAL 0)
  message(FATAL_ERROR "in-memory study failed (rc=${in_memory_rc})")
endif()

execute_process(
  COMMAND ${CLI} ${common} --memory-budget-mb 1
          --spill-dir ${WORK}/runs --save-corpus ${WORK}/spilled.corpus
  RESULT_VARIABLE spilled_rc OUTPUT_QUIET)
if(NOT spilled_rc EQUAL 0)
  message(FATAL_ERROR "budgeted study failed (rc=${spilled_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/in_memory.corpus ${WORK}/spilled.corpus
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
          "snapshots differ between in-memory and 1 MiB-budget runs")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "spill identity: snapshots byte-identical under 1 MiB budget")
