#include "proto/tcp.h"

#include <gtest/gtest.h>

#include "netsim/data_plane.h"
#include "scan/zmap6.h"
#include "util/rng.h"

namespace v6::proto {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

TEST(TcpCodec, SynRoundTrip) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  const auto syn = make_syn(40000, 443, 0xdeadbeef);
  const auto wire = encode_tcp(syn, src, dst);
  EXPECT_EQ(wire.size(), 20u);
  const auto decoded = decode_tcp(wire, src, dst);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, syn);
  EXPECT_TRUE(decoded->is_syn());
  EXPECT_FALSE(decoded->is_syn_ack());
  EXPECT_FALSE(decoded->is_rst());
}

TEST(TcpCodec, SynAckAcknowledgesSequence) {
  const auto syn = make_syn(1, 80, 100);
  const auto syn_ack = make_syn_ack(syn, 777);
  EXPECT_TRUE(syn_ack.is_syn_ack());
  EXPECT_EQ(syn_ack.ack_number, 101u);
  EXPECT_EQ(syn_ack.src_port, 80);
  EXPECT_EQ(syn_ack.dst_port, 1);
}

TEST(TcpCodec, RstAcknowledgesSequence) {
  const auto syn = make_syn(1, 80, 100);
  const auto rst = make_rst(syn);
  EXPECT_TRUE(rst.is_rst());
  EXPECT_EQ(rst.ack_number, 101u);
}

TEST(TcpCodec, ChecksumBindsToAddresses) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  const auto wire = encode_tcp(make_syn(1, 80, 5), src, dst);
  EXPECT_FALSE(decode_tcp(wire, src, addr(2, 3)));
}

TEST(TcpCodec, CorruptionDetected) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  auto wire = encode_tcp(make_syn(1, 80, 5), src, dst);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto corrupted = wire;
    corrupted[i] ^= 0x20;
    EXPECT_FALSE(decode_tcp(corrupted, src, dst)) << "byte " << i;
  }
}

TEST(TcpCodec, TruncationDetected) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  const auto wire = encode_tcp(make_syn(1, 80, 5), src, dst);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(decode_tcp(std::span(wire.data(), n), src, dst));
  }
}

class TcpPlaneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 61;
    config.total_sites = 500;
    world_ = new sim::World(sim::World::generate(config));
    plane_ = new netsim::DataPlane(*world_, {0.0, 5});
  }
  static void TearDownTestSuite() {
    delete plane_;
    delete world_;
  }
  static net::Ipv6Address source() {
    return world_->vantages().front().address;
  }
  static sim::World* world_;
  static netsim::DataPlane* plane_;
};

sim::World* TcpPlaneTest::world_ = nullptr;
netsim::DataPlane* TcpPlaneTest::plane_ = nullptr;

// First unfirewalled server with/without a listener on `port`.
sim::DeviceId find_server(const sim::World& w, std::uint16_t port,
                          bool listening) {
  for (const auto& dev : w.devices()) {
    if (dev.kind != sim::DeviceKind::kServer || dev.firewalled) continue;
    if (w.serves_tcp(dev.id, port) == listening) return dev.id;
  }
  return sim::kNoDevice;
}

TEST_F(TcpPlaneTest, ListenerAnswersSynAck) {
  const auto d = find_server(*world_, 443, true);
  ASSERT_NE(d, sim::kNoDevice);
  const auto outcome = plane_->tcp_syn(source(), world_->server_address(d),
                                       443, 12345, 1000);
  EXPECT_EQ(outcome, netsim::DataPlane::SynOutcome::kSynAck);
}

TEST_F(TcpPlaneTest, ClosedPortAnswersRst) {
  const auto d = find_server(*world_, 443, false);
  ASSERT_NE(d, sim::kNoDevice);
  const auto outcome = plane_->tcp_syn(source(), world_->server_address(d),
                                       443, 12345, 1000);
  EXPECT_EQ(outcome, netsim::DataPlane::SynOutcome::kRst);
}

TEST_F(TcpPlaneTest, IcmpSilentHostsStillRst) {
  // A host that ignores echo must still answer TCP — the reason the
  // Hitlist scans multiple protocols.
  for (const auto& dev : world_->devices()) {
    if (dev.kind != sim::DeviceKind::kServer || dev.responds_icmp ||
        dev.firewalled) {
      continue;
    }
    const auto target = world_->server_address(dev.id);
    const auto echo = plane_->echo(source(), target, 1, 1, 1000);
    EXPECT_EQ(echo.kind, netsim::ProbeResult::Kind::kTimeout);
    const auto syn = plane_->tcp_syn(source(), target, 443, 9, 1000);
    EXPECT_NE(syn, netsim::DataPlane::SynOutcome::kTimeout);
    return;
  }
  GTEST_SKIP() << "no ICMP-silent unfirewalled server in this seed";
}

TEST_F(TcpPlaneTest, FirewalledServerSilentOnTcpToo) {
  for (const auto& dev : world_->devices()) {
    if (dev.kind != sim::DeviceKind::kServer || !dev.firewalled) continue;
    const auto outcome = plane_->tcp_syn(
        source(), world_->server_address(dev.id), 443, 9, 1000);
    EXPECT_EQ(outcome, netsim::DataPlane::SynOutcome::kTimeout);
    return;
  }
  GTEST_SKIP() << "no firewalled server in this seed";
}

TEST_F(TcpPlaneTest, RouterInterfacesRst) {
  const auto outcome =
      plane_->tcp_syn(source(), world_->router_address(0, 0, 1), 80, 9, 50);
  EXPECT_EQ(outcome, netsim::DataPlane::SynOutcome::kRst);
}

TEST_F(TcpPlaneTest, AliasedSpaceSynAcksEverything) {
  const auto prefixes = world_->aliased_datacenter_prefixes();
  ASSERT_FALSE(prefixes.empty());
  util::Rng rng(3);
  const auto target = net::Ipv6Address::from_u64(
      prefixes[0].address().hi64() | 3, rng.next());
  EXPECT_EQ(plane_->tcp_syn(source(), target, 443, 9, 1000),
            netsim::DataPlane::SynOutcome::kSynAck);
}

TEST_F(TcpPlaneTest, UnroutedTargetTimesOut) {
  EXPECT_EQ(plane_->tcp_syn(source(),
                            *net::Ipv6Address::parse("2001:db8::1"), 443, 9,
                            1000),
            netsim::DataPlane::SynOutcome::kTimeout);
}

TEST_F(TcpPlaneTest, ZmapTcpProtocolCountsAnyAnswer) {
  const auto listener = find_server(*world_, 443, true);
  const auto closed = find_server(*world_, 443, false);
  scan::Zmap6Scanner tcp(*plane_, {source(), 100000, 0, 7,
                                   scan::ProbeProtocol::kTcpSyn443});
  EXPECT_TRUE(tcp.probe(world_->server_address(listener), 1000));
  EXPECT_TRUE(tcp.probe(world_->server_address(closed), 1000));
  EXPECT_FALSE(tcp.probe(*net::Ipv6Address::parse("2001:db8::1"), 1000));
}

TEST_F(TcpPlaneTest, ClientsHaveNoListeners) {
  int checked = 0;
  for (const auto& dev : world_->devices()) {
    if (dev.kind == sim::DeviceKind::kServer ||
        dev.kind == sim::DeviceKind::kCpe) {
      continue;
    }
    EXPECT_FALSE(world_->serves_tcp(dev.id, 80));
    EXPECT_FALSE(world_->serves_tcp(dev.id, 443));
    if (++checked > 200) break;
  }
}

}  // namespace
}  // namespace v6::proto
