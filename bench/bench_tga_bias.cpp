// TGA training-data bias (the paper's §1/§2 motivation, quantified).
//
// "Target generation algorithms ... must be trained on some hitlist and
// are biased to the types of addresses contained in their training data."
// This bench trains two classic TGA families (Entropy/IP-style and
// 6Tree-style) on each of the three corpora and probes their candidates:
// infrastructure-rich training data (CAIDA, Hitlist) yields structured,
// persistent targets that answer, while the client-rich NTP corpus —
// despite being orders of magnitude larger — teaches the models ephemeral
// randomness that has long since vanished. Bigger is not automatically
// better for this use; that is exactly why the paper argues hitlist
// *composition* matters, not just size.
#include <unordered_set>

#include "bench_common.h"
#include "scan/tga.h"

namespace {

using namespace v6;

std::vector<net::Ipv6Address> sample_addresses(const hitlist::Corpus& corpus,
                                               std::size_t cap,
                                               std::uint64_t seed) {
  std::vector<net::Ipv6Address> out;
  out.reserve(std::min<std::size_t>(corpus.size(), cap));
  const double keep = corpus.size() <= cap
                          ? 1.0
                          : static_cast<double>(cap) /
                                static_cast<double>(corpus.size());
  util::Rng rng(seed);
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    if (rng.chance(keep)) out.push_back(rec.address);
  });
  return out;
}

}  // namespace

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("TGA bias: who you train on is what you find", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  bench::timed("active campaigns", [&] { study.run_campaigns(); });
  const auto& r = study.results();

  struct TrainingSet {
    const char* name;
    std::vector<net::Ipv6Address> addresses;
  };
  const std::size_t kTrainCap = 40000;
  std::vector<TrainingSet> training_sets;
  training_sets.push_back(
      {"NTP corpus (client-rich)", sample_addresses(r.ntp, kTrainCap, 1)});
  training_sets.push_back(
      {"IPv6 Hitlist", sample_addresses(r.hitlist.corpus, kTrainCap, 2)});
  training_sets.push_back(
      {"CAIDA routed /48", sample_addresses(r.caida.corpus, kTrainCap, 3)});

  // Candidates are probed "now": just after the study window, when
  // ephemeral training addresses are long gone but structure persists.
  const util::SimTime probe_time =
      study.config().world.study_duration + util::kDay;
  constexpr std::size_t kCandidates = 20000;

  util::TablePrinter table({"training set", "model", "trained on",
                            "candidates (unique)", "responsive", "hit rate",
                            "new (not in training)"});
  double ntp_hit = 0.0, caida_hit = 0.0;

  for (const auto& training : training_sets) {
    if (training.addresses.empty()) continue;
    util::Rng rng(util::mix64(0x76a ^ training.addresses.size()));

    scan::EntropyIpModel entropy_model;
    entropy_model.train(training.addresses);
    scan::SpaceTreeModel tree_model;
    tree_model.train(training.addresses);

    for (int which = 0; which < 2; ++which) {
      const auto candidates =
          which == 0 ? entropy_model.generate(kCandidates, rng)
                     : tree_model.generate(kCandidates, rng);
      scan::Zmap6Scanner scanner(
          study.plane(),
          {study.world().vantages().front().address, 100000, 0, rng.next()});
      const auto evaluation = scan::evaluate_candidates(
          candidates, training.addresses, scanner, probe_time);
      table.add_row({training.name,
                     which == 0 ? "Entropy/IP" : "6Tree",
                     util::with_commas(training.addresses.size()),
                     util::with_commas(evaluation.unique),
                     util::with_commas(evaluation.responsive),
                     util::percent(evaluation.hit_rate()),
                     util::with_commas(evaluation.new_responsive)});
      if (which == 1) {
        if (training.name[0] == 'N') ntp_hit = evaluation.hit_rate();
        if (training.name[0] == 'C') caida_hit = evaluation.hit_rate();
      }
    }
  }
  table.print(std::cout);

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("infra-trained >> client-trained hit rate",
                 "implied by §1/§2 (and Steger et al. 2023)",
                 caida_hit > ntp_hit ? "yes" : "no");
  comparison.row("CAIDA-trained 6Tree hit rate", "-",
                 util::percent(caida_hit));
  comparison.row("NTP-trained 6Tree hit rate", "-",
                 util::percent(ntp_hit));
  comparison.print();
  std::printf(
      "\nthe punchline: the 7.9B-address corpus is the *worst* TGA diet in "
      "this table —\nits addresses are ephemeral clients, gone before any "
      "scan. The paper's benefit\nclaim is about coverage and analysis, "
      "not about feeding target generators.\n");
  return 0;
}
