#include "analysis/bad_apple.h"

#include <gtest/gtest.h>

#include "hitlist/passive_collector.h"
#include "net/eui64.h"
#include "netsim/pool_dns.h"

namespace v6::analysis {
namespace {

class BadAppleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 93;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static std::uint64_t slash64(std::uint64_t n) {
    return world_->ases()[0].prefix_hi | (2ULL << 28) | (n << 8) | 1;
  }

  static sim::World* world_;
};

sim::World* BadAppleTest::world_ = nullptr;

TEST_F(BadAppleTest, StitchesHouseholdAcrossRotation) {
  hitlist::Corpus corpus;
  const auto apple = net::MacAddress::from_u64(0x0c47c9aa0001ULL);

  // The gadget tags two successive delegated prefixes...
  corpus.add(net::eui64_address(slash64(10), apple), 0);
  corpus.add(net::eui64_address(slash64(20), apple), util::kWeek);
  // ...and the family's privacy-addressed devices live beside it.
  corpus.add(net::Ipv6Address::from_u64(slash64(10), 0x9f3a7cd2e45b8a61ULL),
             100);
  corpus.add(net::Ipv6Address::from_u64(slash64(10), 0x1b74de98c2f56a37ULL),
             200);
  corpus.add(net::Ipv6Address::from_u64(slash64(20), 0x84d2f61a3e97c5b8ULL),
             util::kWeek + 100);
  // A low-entropy co-tenant too (a printer with ::1:0 style address).
  corpus.add(net::Ipv6Address::from_u64(slash64(20), 0x123), 100);
  // Unrelated traffic elsewhere must not be linked.
  corpus.add(net::Ipv6Address::from_u64(slash64(99), 0x5a5a5a5a5a5a5a5aULL),
             100);

  const Eui64Tracker tracker(corpus, *world_);
  const auto report = bad_apple_linkage(corpus, tracker);
  EXPECT_EQ(report.apples_with_cotenants, 1u);
  EXPECT_EQ(report.linked_addresses, 4u);
  EXPECT_EQ(report.linked_privacy_addresses, 3u);
  EXPECT_EQ(report.households_stitched_across_prefixes, 1u);
}

TEST_F(BadAppleTest, LonelyAppleLinksNothing) {
  hitlist::Corpus corpus;
  const auto apple = net::MacAddress::from_u64(0x0c47c9aa0002ULL);
  corpus.add(net::eui64_address(slash64(1), apple), 0);
  corpus.add(net::Ipv6Address::from_u64(slash64(2), 0xdeadbeefcafe1234ULL),
             0);
  const Eui64Tracker tracker(corpus, *world_);
  const auto report = bad_apple_linkage(corpus, tracker);
  EXPECT_EQ(report.apples_with_cotenants, 0u);
  EXPECT_EQ(report.linked_addresses, 0u);
  EXPECT_EQ(report.households_stitched_across_prefixes, 0u);
}

TEST_F(BadAppleTest, TwoApplesInOneHouseholdDoNotLinkEachOther) {
  hitlist::Corpus corpus;
  const auto apple_a = net::MacAddress::from_u64(0x0c47c9aa0003ULL);
  const auto apple_b = net::MacAddress::from_u64(0x0c47c9aa0004ULL);
  corpus.add(net::eui64_address(slash64(5), apple_a), 0);
  corpus.add(net::eui64_address(slash64(5), apple_b), 0);
  const Eui64Tracker tracker(corpus, *world_);
  const auto report = bad_apple_linkage(corpus, tracker);
  // EUI-64 co-tenants are already tracked directly; linked_addresses
  // counts only the privacy-addressed victims.
  EXPECT_EQ(report.linked_addresses, 0u);
}

TEST_F(BadAppleTest, EndToEndCorpusHasLinkage) {
  sim::WorldConfig config;
  config.seed = 94;
  config.total_sites = 800;
  config.study_duration = 40 * util::kDay;
  const auto world = sim::World::generate(config);
  netsim::DataPlane plane(world, {0.0, 1});
  netsim::PoolDns dns(world);
  hitlist::PassiveCollector collector(world, plane, dns, {false, 0.0, 3});
  hitlist::Corpus corpus(1 << 14);
  collector.run(corpus, 0, 40 * util::kDay);

  const Eui64Tracker tracker(corpus, world);
  const auto report = bad_apple_linkage(corpus, tracker);
  // With IoT EUI-64 propensities and multi-device homes, some households
  // must leak.
  EXPECT_GT(report.apples_with_cotenants, 0u);
  EXPECT_GT(report.linked_addresses, 0u);
  EXPECT_GE(report.linked_addresses, report.linked_privacy_addresses);
}

}  // namespace
}  // namespace v6::analysis
