# Empty compiler generated dependencies file for v6_ntp.
# This may be replaced when dependencies are built.
