// ScanSource: the record stream abstraction that lets every analysis run
// unchanged over an in-memory Corpus or the out-of-core TieredCorpus.
//
// ParallelScan needs exactly three things from a corpus: a contiguous
// sharding domain [0, span), a way to visit the records of a sub-range in
// order, and (for Table 1's dataset comparison) an optional membership
// test. ScanSource type-erases those three. The bit-identity contract
// carries over: concatenating visit() over an ascending partition of
// [0, span) yields the records in ascending address order for both
// backends — a canonicalized Corpus because its record array is sorted, a
// TieredCorpus because the k-way merge emits sorted output — so a kernel
// that is merge-exact under ParallelScan cannot tell the backends apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "hitlist/corpus.h"
#include "net/ipv6.h"

namespace v6::hitlist {
class TieredCorpus;
}  // namespace v6::hitlist

namespace v6::analysis {

struct ScanSource {
  using RecordFn = std::function<void(const hitlist::AddressRecord&)>;

  // Sharding domain: ParallelScan partitions [0, span) into contiguous
  // ranges. Record positions for a Corpus, segment indices for runs.
  std::size_t span = 0;
  // Unique records a full visit sees (metrics / sizing, not control flow).
  std::uint64_t records = 0;
  // Streams the records of domain sub-range [begin, end), in order. Must
  // be safe to call concurrently on disjoint ranges.
  std::function<void(std::size_t, std::size_t, const RecordFn&)> visit;
  // Optional membership probe. Null when point lookups are prohibitive
  // (the tiered engine pays a block decode per probe) — callers needing
  // membership against such a source invert the scan instead (see
  // summarize_dataset).
  std::function<bool(const net::Ipv6Address&)> contains;
};

// In-memory source. The corpus must outlive the source and stay
// unmutated while scans run.
inline ScanSource make_source(const hitlist::Corpus& corpus) {
  ScanSource src;
  src.span = corpus.slot_span();
  src.records = corpus.size();
  src.visit = [&corpus](std::size_t begin, std::size_t end,
                        const ScanSource::RecordFn& fn) {
    corpus.for_each_in_slot_range(begin, end, fn);
  };
  src.contains = [&corpus](const net::Ipv6Address& address) {
    return corpus.find(address) != nullptr;
  };
  return src;
}

// Out-of-core source over the merged run stream. Warms the tiered
// corpus's lazy segment/size caches here, on the calling thread, so the
// returned visit() is safe for concurrent shard workers.
ScanSource make_source(const hitlist::TieredCorpus& runs);

}  // namespace v6::analysis
