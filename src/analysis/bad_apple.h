// "One Bad Apple" linkage (Saidi, Gasser, Smaragdakis — SIGCOMM CCR'22,
// the paper's reference [66]): a single EUI-64 device inside a home
// de-anonymizes everyone behind the same prefix.
//
// Privacy addresses rotate, and provider prefix rotation is supposed to
// unlink a household's address history. But if even one gadget in the LAN
// uses EUI-64, its stable MAC tags every delegated prefix the household
// ever holds — and every *other* address observed inside those /64s
// (the phones and laptops doing everything right) becomes linkable to one
// subscriber line across rotations.
#pragma once

#include <cstdint>

#include "analysis/eui64_tracking.h"
#include "hitlist/corpus.h"

namespace v6::analysis {

struct BadAppleReport {
  // EUI-64 MACs that shared at least one /64 with other observed hosts.
  std::uint64_t apples_with_cotenants = 0;
  // Non-EUI-64 corpus addresses observed in an apple-tagged /64.
  std::uint64_t linked_addresses = 0;
  // ...of which high-entropy privacy addresses (the ones whose whole
  // point was unlinkability).
  std::uint64_t linked_privacy_addresses = 0;
  // Apples whose tag joins co-tenant addresses across >= 2 distinct /64s
  // (i.e., the household's history is actually stitched across a prefix
  // rotation, not just within one delegation).
  std::uint64_t households_stitched_across_prefixes = 0;
};

// Joins the corpus against the tracker's EUI-64 sightings.
BadAppleReport bad_apple_linkage(const hitlist::Corpus& corpus,
                                 const Eui64Tracker& tracker);

}  // namespace v6::analysis
