#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace v6::bench {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = util::parse_dec_u64(value);
  return parsed.value_or(fallback);
}

}  // namespace

core::StudyConfig bench_config() {
  core::StudyConfig config;
  config.world.seed = env_u64("V6_BENCH_SEED", 2022);
  config.world.total_sites =
      static_cast<std::uint32_t>(env_u64("V6_BENCH_SITES", 20000));
  config.world.study_duration =
      static_cast<util::SimDuration>(env_u64("V6_BENCH_DAYS", 219)) *
      util::kDay;
  // The backscan week runs after the study window (January 2023 in the
  // paper's calendar).
  config.backscan_start = config.world.study_duration + 26 * util::kDay;
  // Campaign windows scale with the study window.
  config.hitlist_campaign.start = 22 * util::kDay;
  config.hitlist_campaign.duration =
      std::max<util::SimDuration>(config.world.study_duration -
                                      25 * util::kDay,
                                  4 * util::kWeek);
  config.caida_campaign.start = 9 * util::kDay;
  config.caida_campaign.duration = std::min<util::SimDuration>(
      62 * util::kDay, config.world.study_duration);
  return config;
}

void print_banner(const std::string& bench_name,
                  const core::StudyConfig& config) {
  std::printf(
      "================================================================\n"
      "%s\n"
      "world: %u sites, %ld-day study, seed %llu  "
      "(V6_BENCH_SITES / V6_BENCH_DAYS / V6_BENCH_SEED to rescale)\n"
      "================================================================\n",
      bench_name.c_str(), config.world.total_sites,
      static_cast<long>(config.world.study_duration / util::kDay),
      static_cast<unsigned long long>(config.world.seed));
}

void timed(const std::string& label, const std::function<void()>& fn) {
  timed_seconds(label, fn);
}

double timed_seconds(const std::string& label,
                     const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  const double seconds = static_cast<double>(elapsed.count()) / 1000.0;
  std::printf("[%s: %.1fs]\n", label.c_str(), seconds);
  return seconds;
}

void print_cdf(const std::string& caption,
               const util::EmpiricalDistribution& distribution,
               std::size_t points) {
  if (distribution.empty()) {
    std::printf("# %s: (empty)\n", caption.c_str());
    return;
  }
  std::vector<double> xs, ys;
  for (const auto& [x, y] : distribution.cdf_curve(points)) {
    xs.push_back(x);
    ys.push_back(y);
  }
  util::print_series(std::cout, caption, {"x", "cdf"}, {xs, ys});
}

BenchJson scaled_bench_json(const std::string& bench_name) {
  BenchJson json(bench_name);
  const auto config = bench_config();
  json.integer("sites", config.world.total_sites);
  json.integer("days", static_cast<std::uint64_t>(
                           config.world.study_duration / util::kDay));
  json.integer("seed", config.world.seed);
  return json;
}

}  // namespace v6::bench
