#include "hitlist/release.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/strings.h"

namespace v6::hitlist {

std::vector<ReleaseEntry> aggregate_to_slash48(const Corpus& corpus) {
  std::unordered_map<net::Ipv6Prefix, std::uint64_t> counts;
  corpus.for_each([&counts](const AddressRecord& rec) {
    ++counts[net::slash48_of(rec.address)];
  });
  std::vector<ReleaseEntry> rows;
  rows.reserve(counts.size());
  for (const auto& [prefix, count] : counts) rows.push_back({prefix, count});
  std::sort(rows.begin(), rows.end(),
            [](const ReleaseEntry& a, const ReleaseEntry& b) {
              return a.prefix < b.prefix;
            });
  return rows;
}

void write_release(std::ostream& out, const std::vector<ReleaseEntry>& rows,
                   std::uint64_t min_count) {
  std::uint64_t suppressed = 0;
  for (const auto& row : rows) {
    if (row.address_count < min_count) ++suppressed;
  }
  out << "# v6pool active-prefix release, aggregated to /48 per the study's\n"
         "# ethics policy (full addresses can identify and locate users).\n";
  if (min_count > 1) {
    out << "# k-anonymity floor: prefixes with fewer than " << min_count
        << " addresses withheld (" << suppressed << " rows suppressed).\n";
  }
  out << "# prefix,address_count\n";
  for (const auto& row : rows) {
    if (row.address_count < min_count) continue;
    out << row.prefix.to_string() << ',' << row.address_count << '\n';
  }
}

std::vector<ReleaseEntry> read_release(std::istream& in) {
  std::vector<ReleaseEntry> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("release row missing count: " + line);
    }
    const auto prefix = net::Ipv6Prefix::parse(
        std::string_view(line).substr(0, comma));
    const auto count =
        util::parse_dec_u64(std::string_view(line).substr(comma + 1));
    if (!prefix || prefix->length() != 48 || !count) {
      throw std::runtime_error("malformed release row: " + line);
    }
    rows.push_back({*prefix, *count});
  }
  return rows;
}

}  // namespace v6::hitlist
