#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace v6::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_dec_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 10);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xf];
  }
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string human_count(std::uint64_t value) {
  static constexpr struct {
    std::uint64_t threshold;
    char suffix;
  } kScales[] = {{1000000000000ULL, 'T'},
                 {1000000000ULL, 'B'},
                 {1000000ULL, 'M'},
                 {1000ULL, 'K'}};
  for (const auto& scale : kScales) {
    if (value >= scale.threshold) {
      const double scaled =
          static_cast<double>(value) / static_cast<double>(scale.threshold);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.*f%c", scaled >= 100 ? 0 : 2, scaled,
                    scale.suffix);
      return buf;
    }
  }
  return std::to_string(value);
}

std::string percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace v6::util
