#include "proto/checksum.h"

namespace v6::proto {

namespace {

std::uint32_t sum_words(std::span<const std::uint8_t> data,
                        std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

std::uint16_t fold(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return fold(sum_words(data, 0));
}

std::uint16_t pseudo_header_checksum(
    const net::Ipv6Address& src, const net::Ipv6Address& dst,
    std::uint8_t next_header, std::span<const std::uint8_t> payload) noexcept {
  std::uint32_t acc = 0;
  acc = sum_words(src.bytes(), acc);
  acc = sum_words(dst.bytes(), acc);
  const auto length = static_cast<std::uint32_t>(payload.size());
  acc += length >> 16;
  acc += length & 0xffff;
  acc += next_header;  // 3 zero bytes then next header
  acc = sum_words(payload, acc);
  return fold(acc);
}

namespace {

struct Crc32Table {
  std::uint32_t entry[256];
  constexpr Crc32Table() : entry{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entry[i] = c;
    }
  }
};

constexpr Crc32Table kCrc32Table{};

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = kCrc32Table.entry[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace v6::proto
