// Figure 1 — CDFs of IID entropy for the NTP corpus, the IPv6 Hitlist, the
// CAIDA routed-/48 dataset, and their pairwise intersections with the NTP
// corpus. Headline shape: NTP median ~0.8 (clients), Hitlist ~0.7 (mixed),
// CAIDA almost entirely low entropy (operator-assigned router IIDs).
#include "analysis/entropy_distribution.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 1: IID entropy CDFs", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  bench::timed("active campaigns", [&] { study.run_campaigns(); });
  const auto& r = study.results();

  const auto ntp = analysis::entropy_distribution(r.ntp);
  const auto hitlist = analysis::entropy_distribution(r.hitlist.corpus);
  const auto caida = analysis::entropy_distribution(r.caida.corpus);
  const auto ntp_hitlist =
      analysis::intersection_entropy_distribution(r.ntp, r.hitlist.corpus);
  const auto ntp_caida =
      analysis::intersection_entropy_distribution(r.ntp, r.caida.corpus);

  bench::print_cdf("Fig 1 series: NTP Pool", ntp);
  bench::print_cdf("Fig 1 series: IPv6 Hitlist", hitlist);
  bench::print_cdf("Fig 1 series: CAIDA routed /48", caida);
  bench::print_cdf("Fig 1 series: NTP ∩ Hitlist", ntp_hitlist);
  bench::print_cdf("Fig 1 series: NTP ∩ CAIDA", ntp_caida);

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("NTP median entropy", "~0.8",
                 std::to_string(ntp.median()));
  comparison.row("Hitlist median entropy", "~0.7",
                 hitlist.empty() ? "-" : std::to_string(hitlist.median()));
  comparison.row("CAIDA median entropy", "near 0",
                 caida.empty() ? "-" : std::to_string(caida.median()));
  comparison.row("CAIDA low-entropy (<0.25) share", "almost all",
                 caida.empty() ? "-" : util::percent(caida.cdf(0.25)));
  comparison.row("NTP high-entropy (>=0.75) share", "majority",
                 util::percent(1.0 - ntp.cdf(0.75)));
  comparison.print();
  return 0;
}
