
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_datasets.cpp" "bench-build/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/v6_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/v6_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/v6_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/hitlist/CMakeFiles/v6_hitlist.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/v6_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/v6_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/v6_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/v6_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/v6_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
