// An immutable, epoch-stamped query snapshot of a hitlist corpus.
//
// The serving layer's unit of publication: one Snapshot is built at a
// collection merge barrier from the canonicalized record stream (an
// in-memory Corpus or the out-of-core TieredCorpus, both behind
// analysis::ScanSource) and never mutated afterwards. Readers may hold a
// shared_ptr to it for as long as they like — queries against a given
// epoch are a pure function of that epoch's content, bit-identical at any
// reader or ingest thread count (the QueryService swap is the only moving
// part).
//
// Four query families, all answered from flat sorted tables built in one
// pass over the ascending record stream:
//   * point          — is this address known? (full AddressRecord back)
//   * /48 density    — unique addresses inside a /48
//   * /64 entropy    — per-band IID-entropy breakdown of a /64
//   * EUI-64 risk    — per-OUI MAC exposure (the paper's §5 tracking risk)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hitlist/corpus.h"
#include "net/entropy.h"
#include "net/ipv6.h"
#include "net/mac.h"
#include "util/sim_time.h"

namespace v6::analysis {
struct ScanSource;
}  // namespace v6::analysis

namespace v6::serve {

// Per-band address counts of one /64 (the Fig 1 bands, scoped to a
// subnet). `addresses == low + medium + high`.
struct Slash64Summary {
  std::uint64_t addresses = 0;
  std::uint64_t low = 0;
  std::uint64_t medium = 0;
  std::uint64_t high = 0;
  std::uint64_t eui64 = 0;  // EUI-64-shaped subset (counted inside a band)

  // Majority entropy band; ties resolve to the lower band (a /64 with as
  // many structured as random IIDs is treated as the more scannable one).
  net::EntropyBand dominant() const noexcept {
    if (low >= medium && low >= high) return net::EntropyBand::kLow;
    if (medium >= high) return net::EntropyBand::kMedium;
    return net::EntropyBand::kHigh;
  }
};

// Per-OUI EUI-64 exposure: how many addresses leak MACs of this vendor
// prefix, and how many of those MACs are trackable across subnets
// (appear in >= 2 distinct /64s — the paper's §5.2 gate).
struct OuiRisk {
  std::uint64_t eui64_addresses = 0;
  std::uint64_t unique_macs = 0;
  std::uint64_t trackable_macs = 0;
  std::uint64_t mac_slash64_pairs = 0;  // distinct (MAC, /64) sightings
};

class Snapshot {
 public:
  // Builds a snapshot from the ascending record stream of `src` (the
  // ScanSource contract: concatenating visit() over [0, span) yields
  // records in ascending address order — a canonicalized Corpus or any
  // TieredCorpus qualifies). Single-threaded; call at a merge barrier.
  static std::shared_ptr<const Snapshot> build(const analysis::ScanSource& src,
                                               std::uint64_t epoch,
                                               util::SimTime as_of);

  std::uint64_t epoch() const noexcept { return epoch_; }
  util::SimTime as_of() const noexcept { return as_of_; }
  std::uint64_t records() const noexcept { return records_.size(); }
  std::uint64_t observations() const noexcept { return observations_; }

  // Point query: the full record for `address`, or nullopt when unknown.
  std::optional<hitlist::AddressRecord> find(
      const net::Ipv6Address& address) const noexcept;
  bool contains(const net::Ipv6Address& address) const noexcept {
    return find(address).has_value();
  }

  // Unique addresses inside the /48 containing `address`.
  std::uint64_t slash48_density(const net::Ipv6Address& address) const noexcept;

  // Entropy breakdown of the /64 containing `address`, or nullptr when the
  // snapshot holds no address in that subnet.
  const Slash64Summary* slash64(const net::Ipv6Address& address) const noexcept;

  // EUI-64 risk for a vendor OUI, or nullptr when no EUI-64 address of
  // that OUI is known.
  const OuiRisk* oui_risk(net::Oui oui) const noexcept;

  // Distinct key counts, for capacity summaries.
  std::size_t slash48_count() const noexcept { return slash48_.size(); }
  std::size_t slash64_count() const noexcept { return slash64_.size(); }
  std::size_t oui_count() const noexcept { return oui_.size(); }

  // FNV-1a fold over every answer table, computed once at build time: two
  // snapshots answer every query identically iff their digests match (the
  // bit-identity handle the bench and tests assert on).
  std::uint64_t digest() const noexcept { return digest_; }

  // Heap footprint of the answer tables (the quantity the retention bound
  // in QueryService is budgeting).
  std::size_t memory_bytes() const noexcept;

 private:
  struct Slash48Row {
    std::uint64_t key = 0;  // top 48 bits of hi64, right-aligned
    std::uint64_t count = 0;
  };
  struct Slash64Row {
    std::uint64_t hi = 0;  // the /64's network half
    Slash64Summary summary;
  };
  struct OuiRow {
    std::uint32_t oui = 0;
    OuiRisk risk;
  };

  std::uint64_t epoch_ = 0;
  util::SimTime as_of_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t digest_ = 0;
  // All ascending by key; queries binary-search.
  std::vector<hitlist::AddressRecord> records_;
  std::vector<Slash48Row> slash48_;
  std::vector<Slash64Row> slash64_;
  std::vector<OuiRow> oui_;
};

}  // namespace v6::serve
