#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace v6::util {
namespace {

TEST(TablePrinter, AlignsAndRules) {
  TablePrinter table({"name", "count"});
  table.add_row({"alpha", "12"});
  table.add_row({"b", "3456"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("3456"), std::string::npos);
  // Numeric column right-aligned: "12" indented to width of "count".
  EXPECT_NE(text.find("   12"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, EscapesSpecials) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row({"plain", "with,comma"});
  csv.row({"with\"quote", "multi\nline"});
  const std::string text = out.str();
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"with\"\"quote\""), std::string::npos);
}

TEST(CsvWriter, WidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a"});
  EXPECT_THROW(csv.row({"x", "y"}), std::invalid_argument);
}

TEST(PrintSeries, UnequalColumnLengths) {
  std::ostringstream out;
  print_series(out, "caption", {"x", "y"}, {{1.0, 2.0, 3.0}, {0.5}});
  const std::string text = out.str();
  EXPECT_NE(text.find("# caption"), std::string::npos);
  EXPECT_NE(text.find("x,y"), std::string::npos);
  EXPECT_NE(text.find("1,0.5"), std::string::npos);
  EXPECT_NE(text.find("3,\n"), std::string::npos);  // missing y cell is empty
}

}  // namespace
}  // namespace v6::util
