#include "hitlist/alias_detection.h"

namespace v6::hitlist {

AliasDetector::AliasDetector(netsim::DataPlane& plane,
                             const AliasDetectorConfig& config)
    : plane_(&plane),
      config_(config),
      scanner_(plane, {config.source, 100000, 0, config.seed}),
      rng_(util::mix64(config.seed ^ 0xa11a)) {}

bool AliasDetector::is_aliased(const net::Ipv6Prefix& prefix,
                               util::SimTime t) {
  std::uint32_t hits = 0;
  for (std::uint32_t i = 0; i < config_.probes_per_prefix; ++i) {
    // Random host bits under the prefix. For prefixes shorter than /64 the
    // subnet half is randomized too (one probe per pseudo-random /64).
    const int host_bits = 128 - prefix.length();
    std::uint64_t hi = prefix.address().hi64();
    if (host_bits > 64) {
      const std::uint64_t subnet_mask =
          (std::uint64_t{1} << (host_bits - 64)) - 1;
      hi |= rng_.next() & subnet_mask;
    }
    const net::Ipv6Address target =
        net::Ipv6Address::from_u64(hi, rng_.next());
    if (scanner_.probe(target, t)) ++hits;
    // Early exit once the verdict is decided either way.
    if (hits >= config_.response_threshold) return true;
    if (hits + (config_.probes_per_prefix - 1 - i) <
        config_.response_threshold) {
      return false;
    }
  }
  return hits >= config_.response_threshold;
}

std::vector<net::Ipv6Prefix> AliasDetector::filter_aliased(
    std::span<const net::Ipv6Prefix> prefixes, util::SimTime t) {
  std::vector<net::Ipv6Prefix> out;
  for (const auto& p : prefixes) {
    if (is_aliased(p, t)) out.push_back(p);
  }
  return out;
}

}  // namespace v6::hitlist
