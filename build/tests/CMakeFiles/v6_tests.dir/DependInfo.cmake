
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alias_detection.cpp" "tests/CMakeFiles/v6_tests.dir/test_alias_detection.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_alias_detection.cpp.o.d"
  "/root/repo/tests/test_analysis_categories.cpp" "tests/CMakeFiles/v6_tests.dir/test_analysis_categories.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_analysis_categories.cpp.o.d"
  "/root/repo/tests/test_analysis_entropy.cpp" "tests/CMakeFiles/v6_tests.dir/test_analysis_entropy.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_analysis_entropy.cpp.o.d"
  "/root/repo/tests/test_analysis_eui64.cpp" "tests/CMakeFiles/v6_tests.dir/test_analysis_eui64.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_analysis_eui64.cpp.o.d"
  "/root/repo/tests/test_analysis_geolink.cpp" "tests/CMakeFiles/v6_tests.dir/test_analysis_geolink.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_analysis_geolink.cpp.o.d"
  "/root/repo/tests/test_analysis_lifetimes.cpp" "tests/CMakeFiles/v6_tests.dir/test_analysis_lifetimes.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_analysis_lifetimes.cpp.o.d"
  "/root/repo/tests/test_as_entropy.cpp" "tests/CMakeFiles/v6_tests.dir/test_as_entropy.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_as_entropy.cpp.o.d"
  "/root/repo/tests/test_bad_apple.cpp" "tests/CMakeFiles/v6_tests.dir/test_bad_apple.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_bad_apple.cpp.o.d"
  "/root/repo/tests/test_campaigns.cpp" "tests/CMakeFiles/v6_tests.dir/test_campaigns.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_campaigns.cpp.o.d"
  "/root/repo/tests/test_classify.cpp" "tests/CMakeFiles/v6_tests.dir/test_classify.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_classify.cpp.o.d"
  "/root/repo/tests/test_corpus.cpp" "tests/CMakeFiles/v6_tests.dir/test_corpus.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_corpus.cpp.o.d"
  "/root/repo/tests/test_data_plane.cpp" "tests/CMakeFiles/v6_tests.dir/test_data_plane.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_data_plane.cpp.o.d"
  "/root/repo/tests/test_datagram_io.cpp" "tests/CMakeFiles/v6_tests.dir/test_datagram_io.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_datagram_io.cpp.o.d"
  "/root/repo/tests/test_dataset_compare.cpp" "tests/CMakeFiles/v6_tests.dir/test_dataset_compare.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_dataset_compare.cpp.o.d"
  "/root/repo/tests/test_entropy.cpp" "tests/CMakeFiles/v6_tests.dir/test_entropy.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_entropy.cpp.o.d"
  "/root/repo/tests/test_eui64.cpp" "tests/CMakeFiles/v6_tests.dir/test_eui64.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_eui64.cpp.o.d"
  "/root/repo/tests/test_feistel.cpp" "tests/CMakeFiles/v6_tests.dir/test_feistel.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_feistel.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/v6_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_ipv4_mac.cpp" "tests/CMakeFiles/v6_tests.dir/test_ipv4_mac.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_ipv4_mac.cpp.o.d"
  "/root/repo/tests/test_ipv6.cpp" "tests/CMakeFiles/v6_tests.dir/test_ipv6.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_ipv6.cpp.o.d"
  "/root/repo/tests/test_ntp.cpp" "tests/CMakeFiles/v6_tests.dir/test_ntp.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_ntp.cpp.o.d"
  "/root/repo/tests/test_oui_registry.cpp" "tests/CMakeFiles/v6_tests.dir/test_oui_registry.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_oui_registry.cpp.o.d"
  "/root/repo/tests/test_outage.cpp" "tests/CMakeFiles/v6_tests.dir/test_outage.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_outage.cpp.o.d"
  "/root/repo/tests/test_passive_collector.cpp" "tests/CMakeFiles/v6_tests.dir/test_passive_collector.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_passive_collector.cpp.o.d"
  "/root/repo/tests/test_pool_dns.cpp" "tests/CMakeFiles/v6_tests.dir/test_pool_dns.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_pool_dns.cpp.o.d"
  "/root/repo/tests/test_prefix.cpp" "tests/CMakeFiles/v6_tests.dir/test_prefix.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_prefix.cpp.o.d"
  "/root/repo/tests/test_proto.cpp" "tests/CMakeFiles/v6_tests.dir/test_proto.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_proto.cpp.o.d"
  "/root/repo/tests/test_rdns.cpp" "tests/CMakeFiles/v6_tests.dir/test_rdns.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_rdns.cpp.o.d"
  "/root/repo/tests/test_release.cpp" "tests/CMakeFiles/v6_tests.dir/test_release.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_release.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/v6_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rotation.cpp" "tests/CMakeFiles/v6_tests.dir/test_rotation.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_rotation.cpp.o.d"
  "/root/repo/tests/test_scan.cpp" "tests/CMakeFiles/v6_tests.dir/test_scan.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_scan.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/v6_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/v6_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_study.cpp" "tests/CMakeFiles/v6_tests.dir/test_study.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_study.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/v6_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tcp.cpp" "tests/CMakeFiles/v6_tests.dir/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_tcp.cpp.o.d"
  "/root/repo/tests/test_tga.cpp" "tests/CMakeFiles/v6_tests.dir/test_tga.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_tga.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/v6_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/v6_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/v6_tests.dir/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/v6_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/v6_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/hitlist/CMakeFiles/v6_hitlist.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/v6_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/v6_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/v6_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/v6_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/v6_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/v6_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
