#include "net/prefix.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace v6::net {

namespace {

// Masks the address down to `length` bits.
Ipv6Address mask_to(const Ipv6Address& a, int length) {
  Ipv6Address::Bytes b = a.bytes();
  const int full_bytes = length / 8;
  const int rem_bits = length % 8;
  for (int i = full_bytes; i < 16; ++i) {
    if (i == full_bytes && rem_bits != 0) {
      const auto mask = static_cast<std::uint8_t>(0xff << (8 - rem_bits));
      b[static_cast<std::size_t>(i)] &= mask;
    } else {
      b[static_cast<std::size_t>(i)] = 0;
    }
  }
  return Ipv6Address(b);
}

}  // namespace

Ipv6Prefix::Ipv6Prefix(const Ipv6Address& address, int length)
    : length_(std::clamp(length, 0, 128)) {
  address_ = mask_to(address, length_);
}

bool Ipv6Prefix::contains(const Ipv6Address& a) const noexcept {
  return mask_to(a, length_) == address_;
}

bool Ipv6Prefix::contains(const Ipv6Prefix& other) const noexcept {
  return other.length_ >= length_ && contains(other.address_);
}

Ipv6Prefix Ipv6Prefix::truncated(int length) const {
  if (length > length_) {
    throw std::invalid_argument("truncated() to a longer prefix");
  }
  return Ipv6Prefix(address_, length);
}

std::uint64_t Ipv6Prefix::address_count() const noexcept {
  const int host_bits = 128 - length_;
  if (host_bits >= 64) return ~std::uint64_t{0};
  return std::uint64_t{1} << host_bits;
}

Ipv6Address Ipv6Prefix::nth_subnet64(std::uint64_t n) const {
  if (length_ > 64) throw std::invalid_argument("nth_subnet64 on > /64");
  const int shift_bits = 64 - length_;
  if (shift_bits < 64 && n >= (std::uint64_t{1} << shift_bits)) {
    throw std::out_of_range("subnet index outside prefix");
  }
  return Ipv6Address::from_u64(address_.hi64() | n, 0);
}

std::string Ipv6Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv6Address::parse(text.substr(0, slash));
  const auto length = util::parse_dec_u64(text.substr(slash + 1));
  if (!address || !length || *length > 128) return std::nullopt;
  return Ipv6Prefix(*address, static_cast<int>(*length));
}

Ipv6Prefix slash48_of(const Ipv6Address& a) { return Ipv6Prefix(a, 48); }
Ipv6Prefix slash64_of(const Ipv6Address& a) { return Ipv6Prefix(a, 64); }

std::size_t Ipv6PrefixHash::operator()(const Ipv6Prefix& p) const noexcept {
  return Ipv6AddressHash{}(p.address()) ^
         util::mix64(static_cast<std::uint64_t>(p.length()));
}

}  // namespace v6::net
