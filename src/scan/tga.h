// Target generation algorithms (TGAs).
//
// The paper's motivation section: without brute-force scanning, IPv6
// measurement leans on TGAs (Entropy/IP, 6Gen, 6Tree, 6Forest, ...) that
// must be *trained on some hitlist* and are therefore "biased to the types
// of addresses contained in their training data". This module implements
// two classic model families so that bias is measurable in-repo:
//
//   * EntropyIpModel — Foremski et al.'s Entropy/IP (IMC'16) in spirit:
//     segment the 32 nibbles of an address by per-position entropy, learn
//     per-segment value distributions, and sample candidates by drawing
//     segments independently.
//   * SpaceTreeModel — 6Tree-style divisive hierarchical clustering: a
//     nibble-trie over the training set whose dense leaves define regions
//     to explore; candidates are drawn inside leaf regions proportional
//     to observed density.
//
// The bench (bench_tga_bias) trains both on the NTP corpus and on the
// active datasets, probes the generated candidates, and shows the paper's
// point: ephemeral client-rich training data yields far fewer responsive
// targets than infrastructure-rich data — bigger is not automatically
// better for this use.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "scan/zmap6.h"
#include "util/rng.h"

namespace v6::scan {

// ------------------------------------------------------------ Entropy/IP

class EntropyIpModel {
 public:
  struct Config {
    // Below this normalized per-nibble entropy a position is "stable"
    // and modeled by its value histogram; above `random_cutoff` it is
    // modeled as uniformly random.
    double stable_cutoff = 0.05;
    double random_cutoff = 0.95;
    // Cap on distinct values kept per segment (the rest of the mass
    // becomes a uniform-random fallback).
    std::size_t max_values_per_segment = 64;
    // Maximum nibbles per segment (segments longer than this are split).
    int max_segment_nibbles = 8;
  };

  // One learned segment of consecutive nibble positions.
  struct Segment {
    int first_nibble = 0;  // 0 = most significant nibble of the address
    int nibble_count = 0;
    enum class Kind : std::uint8_t { kStable, kValued, kRandom } kind =
        Kind::kRandom;
    // For kStable/kValued: observed values (right-aligned) and weights.
    std::vector<std::pair<std::uint64_t, double>> values;
    // Probability mass not covered by `values` (sampled uniformly).
    double random_mass = 0.0;
  };

  EntropyIpModel() = default;
  explicit EntropyIpModel(const Config& config) : config_(config) {}

  // Fits segments to the training addresses. Requires at least one.
  void train(std::span<const net::Ipv6Address> addresses);

  net::Ipv6Address generate_one(util::Rng& rng) const;
  // Generates n candidates (duplicates possible, as in the real tool).
  std::vector<net::Ipv6Address> generate(std::size_t n, util::Rng& rng) const;

  std::span<const Segment> segments() const noexcept { return segments_; }
  bool trained() const noexcept { return !segments_.empty(); }

 private:
  Config config_{};
  std::vector<Segment> segments_;
};

// --------------------------------------------------------------- 6Tree

class SpaceTreeModel {
 public:
  struct Config {
    // A node holding at most this many addresses becomes a leaf region.
    std::size_t leaf_threshold = 16;
    // Never descend past this nibble depth (remaining nibbles free).
    int max_depth = 24;
  };

  // A dense region discovered by the clustering: a nibble-prefix plus the
  // number of training addresses inside it.
  struct Region {
    net::Ipv6Address prefix;  // high `depth` nibbles meaningful
    int depth = 0;            // in nibbles
    std::size_t count = 0;
  };

  SpaceTreeModel() = default;
  explicit SpaceTreeModel(const Config& config) : config_(config) {}

  void train(std::span<const net::Ipv6Address> addresses);

  // Draws a region ~ density, fills the free nibbles randomly.
  net::Ipv6Address generate_one(util::Rng& rng) const;
  std::vector<net::Ipv6Address> generate(std::size_t n, util::Rng& rng) const;

  std::span<const Region> regions() const noexcept { return regions_; }
  bool trained() const noexcept { return !regions_.empty(); }

 private:
  void split(std::vector<net::Ipv6Address>& addresses, std::size_t begin,
             std::size_t end, int depth);

  Config config_{};
  std::vector<Region> regions_;
  std::vector<double> cumulative_;  // region-selection CDF
};

// ------------------------------------------------------------ evaluation

struct TgaEvaluation {
  std::uint64_t generated = 0;
  std::uint64_t unique = 0;
  std::uint64_t responsive = 0;
  // Responsive addresses that were NOT in the training set — the ones a
  // TGA is actually for.
  std::uint64_t new_responsive = 0;

  double hit_rate() const noexcept {
    return unique == 0 ? 0.0
                       : static_cast<double>(responsive) /
                             static_cast<double>(unique);
  }
};

// Probes `candidates` (deduplicated) with the given scanner at time t and
// scores them against the training set.
TgaEvaluation evaluate_candidates(
    std::span<const net::Ipv6Address> candidates,
    std::span<const net::Ipv6Address> training, Zmap6Scanner& scanner,
    util::SimTime t);

}  // namespace v6::scan
