// V6DIST01: the coordinator/worker control protocol for distributed
// passive collection.
//
// The paper's deployment was 27 VPSes feeding a central aggregator; this
// protocol is the repo's version of that wire. It deliberately carries
// CONTROL only — chunk-lease grants, heartbeats, checkpoint-upload
// notices, completion, revocation — while the bulk artifacts (corpus
// snapshots, run files) travel as the existing durable formats
// (`V6CKPT01`, `V6RUN001`, `V6CORP02`) referenced by path + size + CRC.
// That keeps every byte that decides study *results* under the formats
// whose hostile-input suites already exist, and keeps this layer small
// enough to fuzz exhaustively (test_dist_protocol corrupts and truncates
// every byte offset).
//
// Frame layout (all integers big-endian via proto::BufferWriter):
//
//   magic  "V6DIST01"   8 bytes
//   type                u8   (FrameType)
//   sender              u32  (worker id, or kCoordinatorId)
//   subset              u32  (vantage subset the frame concerns, or
//                             kNoSubset for fleet-wide frames)
//   epoch               u32  (lease fencing token, see below)
//   seq                 u64  (per-sender, strictly increasing from 0)
//   sim_time            u64  (cluster-clock stamp of the event)
//   payload_len         u32  (<= kMaxPayload)
//   payload             payload_len bytes (type-specific, below)
//   crc32               u32  over type..payload
//
// Lease fencing: every grant carries the subset's current epoch; the
// coordinator bumps the epoch when it revokes or reassigns a lease, and
// rejects any upload stamped with a stale epoch. A worker that stalled
// past the heartbeat timeout and then woke up cannot double-report work
// the replacement lease is already redoing — the stale upload bounces,
// which is what makes reassignment safe against zombies.
//
// A frame LOG is simply concatenated frames; lint_dist_frames() validates
// one dependency-free, in the style of obs::lint_timeline_jsonl.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.h"
#include "obs/timeline.h"

namespace v6::dist {

inline constexpr std::uint32_t kCoordinatorId = 0xfffffffe;
inline constexpr std::uint32_t kNoSubset = 0xffffffff;
// Control frames are small; anything bigger is garbage or an attack.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;
// magic(8) type(1) sender(4) subset(4) epoch(4) seq(8) sim_time(8)
// payload_len(4).
inline constexpr std::size_t kFrameHeaderBytes = 41;

enum class FrameType : std::uint8_t {
  kHello = 1,             // worker -> coordinator: I exist (payload empty)
  kLeaseGrant = 2,        // coordinator -> worker: LeaseGrant payload
  kHeartbeat = 3,         // worker -> coordinator: liveness (payload empty)
  kCheckpointUpload = 4,  // worker -> coordinator: Artifact payload
  kComplete = 5,          // worker -> coordinator: Artifact payload
  kShutdown = 6,          // coordinator -> fleet: run over (payload empty)
  kRevoke = 7,            // coordinator -> worker: lease fenced off (empty)
  kObsReport = 8,         // worker -> coordinator: ObsReport payload
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::uint32_t sender = 0;
  std::uint32_t subset = kNoSubset;
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t sim_time = 0;
  std::vector<std::uint8_t> payload;
};

// kLeaseGrant payload: collect vantage subset `subset` (of subset_count)
// over [window_start, window_end), checkpointing every chunk_interval sim
// seconds. resume_from > window_start means a recovery lease: replay up
// to resume_from from the checkpoint at checkpoint_path, then record.
struct LeaseGrant {
  std::uint64_t window_start = 0;
  std::uint64_t window_end = 0;
  std::uint64_t chunk_interval = 0;
  std::uint64_t resume_from = 0;
  std::uint32_t subset_count = 1;
  std::string checkpoint_path;  // empty on a fresh lease
};

// kCheckpointUpload / kComplete payload: a durable artifact the sender
// already wrote (V6CKPT01 for uploads; the final checkpoint for
// completion), referenced rather than inlined.
struct Artifact {
  std::string path;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

// kObsReport payload: the worker's observability state for one finished
// lease — its registry snapshot (metric samples only; trace spans stay
// process-local) plus the lease's timeline windows. Sent at the same
// deterministic completion barrier as kComplete, so the frame bytes are a
// pure function of (config, seed, fault plan) for the deterministic
// counter families; wall-clock histogram fields ride along but carry no
// determinism promise. The coordinator feeds decoded reports into
// obs::ClusterAggregator.
//
// Wire layout (inside the CRC-framed payload, all integers big-endian):
//   u32 sample_count, then per sample:
//     name, help (u16-length strings)  · u8 type (0=counter 1=gauge 2=hist)
//     u16 label_count, then key/value string pairs
//     counter: u64 value · gauge: u64 double-bits
//     histogram: u32 bound_count · bound_count u64 double-bits ·
//                bound_count+1 u64 per-bucket counts · u64 count ·
//                u64 sum double-bits
//   u32 window_count, then per window:
//     u64 begin · u64 end · stage string
//     u32 counter_count:   name, labels, u64 delta
//     u32 gauge_count:     name, labels, u64 value double-bits
//     u32 vantage_count:   u32 vantage, u64 polls/answered/fault_lost/records
//     u32 histogram_count: name, labels, u64 count_delta, u64 sum double-bits
// Every untrusted element count is bounds-checked against the bytes left
// before any allocation sized by it.
struct ObsReport {
  obs::Snapshot snapshot;  // samples only; spans is always empty
  obs::Timeline windows;
};

// --- codecs ----------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame);

// Decodes exactly one frame from the FRONT of `data`; `consumed` (when
// non-null) receives how many bytes it spanned, so callers can walk a
// concatenated log. Throws std::runtime_error on bad magic, truncation,
// oversized payload, or CRC mismatch.
Frame decode_frame(std::span<const std::uint8_t> data,
                   std::size_t* consumed = nullptr);

std::vector<std::uint8_t> encode_lease_grant(const LeaseGrant& grant);
LeaseGrant decode_lease_grant(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_artifact(const Artifact& artifact);
Artifact decode_artifact(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_obs_report(const ObsReport& report);
ObsReport decode_obs_report(std::span<const std::uint8_t> payload);

// Artifact/checkpoint paths cross process boundaries, so they are treated
// as hostile: relative, no "..", no NUL/newline, no leading '/', at most
// 4096 bytes. Returns the reason a path is unacceptable, or nullopt.
std::optional<std::string> validate_artifact_path(std::string_view path);

// --- linter ----------------------------------------------------------------

// Validates a concatenated V6DIST01 frame log (the bytes of frames.log or
// an in-memory DistReport::frame_log). Checks per frame: framing, CRC,
// known type, payload decodes and passes semantic validation (grant
// windows ordered, chunk interval positive, resume point inside the
// window, subset < subset_count, artifact paths safe); per sender:
// strictly increasing seq starting at 0; whole log: no trailing bytes.
// Returns nullopt when the log is clean, else "frame N: reason".
std::optional<std::string> lint_dist_frames(std::string_view log);

}  // namespace v6::dist
