#include "hitlist/passive_collector.h"

#include "ntp/client_schedule.h"
#include "proto/ntp_packet.h"
#include "proto/udp.h"
#include "util/rng.h"

namespace v6::hitlist {

PassiveCollector::PassiveCollector(const sim::World& world,
                                   netsim::DataPlane& plane,
                                   const netsim::PoolDns& dns,
                                   const CollectorConfig& config)
    : world_(&world), plane_(&plane), dns_(&dns), config_(config) {}

void PassiveCollector::run(Corpus& corpus, util::SimTime start,
                           util::SimTime end, const ObservationHook& hook) {
  // One server object per vantage, all sinking into the corpus.
  std::vector<std::unique_ptr<ntp::NtpServer>> servers;
  servers.reserve(world_->vantages().size());
  for (const auto& vantage : world_->vantages()) {
    auto sink = [&corpus, &hook, address = vantage.address](
                    const ntp::Observation& obs) {
      corpus.add(obs.client, obs.time, obs.vantage);
      if (hook) hook(obs, address);
    };
    servers.push_back(std::make_unique<ntp::NtpServer>(vantage, sink));
    if (config_.wire_fidelity) servers.back()->bind(*plane_);
  }

  const bool outages_possible = world_->config().outage_count > 0;
  const auto devices = world_->devices();
  for (sim::DeviceId d = 0; d < devices.size(); ++d) {
    const sim::Device& dev = devices[d];
    if (!dev.ntp.uses_pool) continue;
    // Order-independent per-device stream: the collection result does not
    // depend on enumeration order (a prerequisite for sharding devices
    // across threads or machines).
    util::Rng dev_rng(
        util::mix64(config_.seed ^ 0xc0111ec7 ^ util::mix64(dev.seed)));
    ntp::ClientSchedule schedule(dev, start, end);
    schedule.for_each([&](util::SimTime t) {
      // An AS-wide outage silences every host in it (the intro's outage-
      // detection use case: the corpus time series shows the hole).
      if (outages_possible &&
          world_->in_outage(world_->attachment(d, t).as_index, t)) {
        return;
      }
      const net::Ipv6Address client = world_->device_address(d, t);
      // One DNS resolution per sync event; every packet of an iburst
      // rides it to the same server.
      const sim::VantagePoint* vantage = dns_->resolve(client, dev_rng);
      // A burst is one sync event: its packets go out ~2s apart.
      const std::uint8_t burst =
          config_.ignore_bursts ? 1 : std::max<std::uint8_t>(dev.ntp.burst, 1);
      for (std::uint8_t k = 0; k < burst; ++k) {
        const util::SimTime tk = t + 2 * k;
        if (tk >= end) break;  // the collection window closes mid-burst
        ++polls_;
        if (vantage == nullptr) continue;
        if (config_.wire_fidelity) {
          const auto nonce = static_cast<std::uint32_t>(dev_rng.next());
          const proto::NtpPacket request =
              proto::make_client_request(tk, nonce);
          const auto src_port =
              static_cast<std::uint16_t>(49152 + dev_rng.bounded(16384));
          const auto response_bytes =
              plane_->send_udp(client, src_port, vantage->address,
                               proto::kNtpPort, request.encode(), tk);
          if (!response_bytes) continue;
          // SNTP client-side validation: server mode, origin echoes our
          // transmit timestamp.
          const auto response = proto::NtpPacket::decode(*response_bytes);
          if (!response || response->mode != proto::NtpMode::kServer ||
              response->origin_time != request.transmit_time) {
            continue;
          }
          ++answered_;
        } else {
          // Fast path: identical steering and loss model, no
          // serialization. Request-direction loss suppresses the
          // observation entirely...
          if (dev_rng.chance(config_.loss_rate)) continue;
          servers[vantage->id]->record(client, tk);
          // ...response-direction loss costs only the client's answer.
          if (!dev_rng.chance(config_.loss_rate)) ++answered_;
        }
      }
    });
  }
}

}  // namespace v6::hitlist
