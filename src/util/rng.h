// Deterministic pseudo-random number generation for the simulator.
//
// All randomness in v6pool flows through Rng, a xoshiro256** engine seeded
// via splitmix64. Library code never reads wall-clock time or the OS entropy
// pool: a study configured with the same seed produces byte-identical
// corpora, which the integration tests rely on.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace v6::util {

// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// Mixes a 64-bit value into a well-distributed hash (one splitmix64 round).
std::uint64_t mix64(std::uint64_t value) noexcept;

// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
// std::uniform_random_bit_generator so it can drive <random> distributions,
// but the convenience members below avoid libstdc++'s distribution objects,
// whose exact output sequences are not portable across implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // True with probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  // Index in [0, weights.size()) drawn proportionally to weights.
  // Zero/negative weights are treated as 0; if all weights are <= 0,
  // returns 0.
  std::size_t weighted(std::span<const double> weights) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[bounded(i)]);
    }
  }

  // Derives an independent child generator; children with distinct tags are
  // statistically independent of the parent and of each other.
  Rng fork(std::uint64_t tag) noexcept;

 private:
  std::uint64_t s_[4];
};

// Draws a rank in [0, n) from a Zipf distribution with exponent `s`.
// Used for heavy-tailed assignment of clients to ASes and countries.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace v6::util
