file(REMOVE_RECURSE
  "CMakeFiles/passive_collection.dir/passive_collection.cpp.o"
  "CMakeFiles/passive_collection.dir/passive_collection.cpp.o.d"
  "passive_collection"
  "passive_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
