#include "core/study.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "analysis/entropy_distribution.h"
#include "analysis/scan_source.h"
#include "hitlist/corpus_io.h"
#include "kernels/dispatch.h"

namespace v6::core {

Study::Study(const StudyConfig& config) : config_(config) {
  metrics_ = std::make_unique<obs::Registry>();
  // Record which batch-kernel backend this run dispatches to (resolved
  // once; env pin > CLI override > CPUID). An info gauge, not a counter:
  // the backend is per-process state, and snapshots should say which
  // code path produced the numbers.
  if (config.metrics) kernels::register_backend_gauge(*metrics_);
  world_ = std::make_unique<sim::World>(sim::World::generate(config.world));
  netsim::DataPlaneConfig plane_config = config.plane;
  if (config.metrics) plane_config.metrics = metrics_.get();
  plane_ = std::make_unique<netsim::DataPlane>(*world_, plane_config);
  // A quarter of pool answers come from the global zone: under-served
  // regions routinely get far-away servers, which is also what lets five
  // backscan vantages observe clients worldwide.
  dns_ = std::make_unique<netsim::PoolDns>(*world_, 0.25,
                                           config.pool_capture_share);
  if (config.metrics) dns_->set_metrics(metrics_.get());
  if (config.faults.active()) {
    // One seeded plan shared by the data plane (drops datagrams to
    // crashed vantages) and the pool DNS (health-aware steering). Being a
    // pure function of time, the plan reconstructs identically in a
    // resumed study.
    faults_ = std::make_unique<netsim::FaultSchedule>(
        world_->vantages(), config.faults, config.world.study_start,
        config.world.study_start + config.world.study_duration);
    plane_->set_faults(faults_.get());
    dns_->set_health_monitor(faults_.get(), config.pool_monitor_delay);
  }
}

serve::QueryService& Study::query_service() {
  if (serve_ == nullptr) {
    serve_ = std::make_unique<serve::QueryService>();
    if (config_.metrics) serve_->set_metrics(metrics_.get());
  }
  return *serve_;
}

hitlist::CollectorConfig Study::collector_config() {
  hitlist::CollectorConfig cfg = config_.collector;
  if (config_.metrics) {
    cfg.metrics = metrics_.get();
    cfg.sampler = sampler_;
  }
  if (serve_ != nullptr && serve_epoch_interval_ > 0) {
    cfg.epoch_interval = serve_epoch_interval_;
    cfg.epoch_sink = [this](util::SimTime t, const hitlist::Corpus& u) {
      serve_->publish(analysis::make_source(u), t);
    };
  }
  return cfg;
}

namespace {

// Per-vantage health gauges, set from the collection stats once the stage
// finishes (gauges describe the latest state, unlike the monotonic
// counters the collector bulk-increments).
void set_vantage_gauges(obs::Registry& registry,
                        const std::vector<hitlist::VantageHealthStats>& vh) {
  for (std::size_t v = 0; v < vh.size(); ++v) {
    const obs::Labels labels = {{"vantage", std::to_string(v)}};
    registry
        .gauge("v6_vantage_answer_ratio",
               "Answered / attempted polls for this vantage", labels)
        .set(vh[v].polls == 0 ? 0.0
                              : static_cast<double>(vh[v].answered) /
                                    static_cast<double>(vh[v].polls));
    registry
        .gauge("v6_vantage_fault_loss_ratio",
               "Fault-swallowed / attempted polls for this vantage", labels)
        .set(vh[v].polls == 0 ? 0.0
                              : static_cast<double>(vh[v].lost_to_fault) /
                                    static_cast<double>(vh[v].polls));
  }
}

}  // namespace

void Study::do_collect(const hitlist::CheckpointSink& sink) {
  if (collected_) return;
  collected_ = true;
  hitlist::PassiveCollector collector(*world_, *plane_, *dns_,
                                      collector_config());
  const util::SimTime start = config_.world.study_start;
  const util::SimTime end = start + config_.world.study_duration;
  if (config_.spill.active()) {
    // Out-of-core: shard tables flush to sorted runs at merge barriers;
    // the merged stream is what every later stage reads.
    results_.ntp_runs = std::make_unique<hitlist::TieredCorpus>(
        config_.spill, config_.metrics ? metrics_.get() : nullptr);
    collector.run(*results_.ntp_runs, start, end, {}, sink);
  } else {
    collector.run(results_.ntp, start, end, {}, sink);
  }
  results_.polls_attempted = collector.polls_attempted();
  results_.polls_answered = collector.polls_answered();
  results_.vantage_health = collector.vantage_health();
  if (config_.metrics) set_vantage_gauges(*metrics_, results_.vantage_health);
}

void Study::do_resume_collect(hitlist::CollectionCheckpoint&& checkpoint,
                              const hitlist::CheckpointSink& sink) {
  if (collected_) return;
  collected_ = true;
  hitlist::PassiveCollector collector(*world_, *plane_, *dns_,
                                      collector_config());
  if (config_.spill.active()) {
    // Resume honors the memory budget: the checkpointed snapshot becomes
    // the TieredCorpus's first spilled run and the resumed tail flushes
    // through the same deterministic barriers as a fresh spilled run.
    results_.ntp_runs = std::make_unique<hitlist::TieredCorpus>(
        config_.spill, config_.metrics ? metrics_.get() : nullptr);
    collector.resume(*results_.ntp_runs, std::move(checkpoint.corpus),
                     checkpoint.state, {}, sink);
  } else {
    results_.ntp = std::move(checkpoint.corpus);
    collector.resume(results_.ntp, checkpoint.state, {}, sink);
  }
  results_.polls_attempted = collector.polls_attempted();
  results_.polls_answered = collector.polls_answered();
  results_.vantage_health = collector.vantage_health();
  if (config_.metrics) set_vantage_gauges(*metrics_, results_.vantage_health);
}

void Study::do_collect_distributed(const dist::DistConfig& dist_config) {
  if (collected_) return;
  collected_ = true;
  dist::SimCluster cluster(*world_, *plane_, *dns_, config_.collector,
                           dist_config, nullptr,
                           config_.metrics ? metrics_.get() : nullptr,
                           config_.metrics ? sampler_ : nullptr);
  const util::SimTime start = config_.world.study_start;
  const util::SimTime end = start + config_.world.study_duration;
  results_.dist = cluster.run(results_.ntp, start, end);
  results_.polls_attempted = results_.dist->polls_attempted;
  results_.polls_answered = results_.dist->polls_answered;
  results_.vantage_health = results_.dist->vantage_health;
  if (config_.metrics) set_vantage_gauges(*metrics_, results_.vantage_health);
}

void Study::do_campaigns() {
  if (campaigned_) return;
  campaigned_ = true;
  hitlist::HitlistCampaignConfig hitlist_config = config_.hitlist_campaign;
  hitlist::CaidaCampaignConfig caida_config = config_.caida_campaign;
  if (config_.metrics) {
    hitlist_config.metrics = metrics_.get();
    hitlist_config.sampler = sampler_;
    caida_config.metrics = metrics_.get();
  }
  results_.hitlist =
      hitlist::run_hitlist_campaign(*world_, *plane_, hitlist_config);
  results_.caida = hitlist::run_caida_campaign(*world_, *plane_, caida_config);
}

void Study::do_backscan() {
  if (backscanned_) return;
  backscanned_ = true;

  scan::BackscanConfig backscan_config = config_.backscan;
  if (config_.metrics) backscan_config.metrics = metrics_.get();
  scan::Backscanner backscanner(*plane_, backscan_config);
  // Spread the participating servers across countries (probing from five
  // co-located servers would only ever see one region's clients).
  std::unordered_set<std::uint8_t> participating;
  {
    std::unordered_set<std::uint16_t> countries_taken;
    for (const auto& v : world_->vantages()) {
      if (participating.size() >= config_.backscan_vantages) break;
      if (countries_taken.insert(v.country.value()).second) {
        participating.insert(v.id);
      }
    }
  }
  // The hook below is order-dependent — Backscanner draws probe targets
  // and trace samples from one shared RNG and fires probes through the
  // shared DataPlane as sightings arrive — so this collection pass runs
  // single-threaded per the hook concurrency contract (see
  // hitlist::ObservationHook). The main collect() pass has no hook and
  // shards freely.
  auto serial_config = collector_config();
  serial_config.threads = util::Parallelism::serial();
  serial_config.sampler_stage = "backscan";
  // The backscan week is a different corpus; its pass must not publish
  // serving epochs (the hook gate in the collector already prevents it —
  // clearing here states the intent).
  serial_config.epoch_sink = {};
  serial_config.epoch_interval = 0;
  hitlist::PassiveCollector collector(*world_, *plane_, *dns_,
                                      serial_config);
  const auto hook = [&](const ntp::Observation& obs,
                        const net::Ipv6Address& vantage_address) {
    results_.backscan_week.add(obs.client, obs.time, obs.vantage);
    if (participating.contains(obs.vantage)) {
      backscanner.observe(obs, vantage_address);
    }
  };
  hitlist::Corpus scratch(1 << 10);
  collector.run(scratch, config_.backscan_start,
                config_.backscan_start + config_.backscan_duration, hook);
  results_.backscan = backscanner.finish();

  // §4.2 cross-checks against the Hitlist campaign's alias knowledge.
  // The Hitlist publishes aliased prefixes at /64, /48, and /36; a
  // backscan /64 counts as "known" when any published prefix covers it.
  AliasCrossCheck check;
  std::unordered_set<net::Ipv6Prefix> hitlist_aliased(
      results_.hitlist.aliased_prefixes.begin(),
      results_.hitlist.aliased_prefixes.end());
  const auto known_to_hitlist = [&](const net::Ipv6Prefix& p64) {
    return hitlist_aliased.contains(p64) ||
           hitlist_aliased.contains(p64.truncated(48)) ||
           hitlist_aliased.contains(p64.truncated(36));
  };
  std::unordered_set<net::Ipv6Prefix> ours(
      results_.backscan.aliased_slash64s.begin(),
      results_.backscan.aliased_slash64s.end());
  for (const auto& p64 : ours) {
    if (known_to_hitlist(p64)) {
      ++check.aliased_known_to_hitlist;
    } else {
      ++check.aliased_new;
    }
  }
  results_.backscan_week.for_each([&](const hitlist::AddressRecord& rec) {
    if (ours.contains(net::slash64_of(rec.address))) {
      ++check.ntp_clients_in_aliased;
    }
  });
  results_.hitlist.corpus.for_each([&](const hitlist::AddressRecord& rec) {
    if (ours.contains(net::slash64_of(rec.address))) {
      ++check.hitlist_addresses_in_aliased;
    }
  });
  results_.alias_check = check;
}

void Study::do_analysis() {
  if (analyzed_) return;
  analyzed_ = true;
  analysis::AnalysisConfig cfg = config_.analysis;
  if (config_.metrics) {
    cfg.metrics = metrics_.get();
    cfg.sampler = sampler_;
    // Analysis runs after the sim clock stopped: every pass closes a
    // zero-width window at the pipeline's end.
    cfg.sample_time = std::max(
        config_.world.study_start + config_.world.study_duration,
        config_.backscan_start + config_.backscan_duration);
  }
  AnalysisReport& report = results_.analysis;
  auto* stats = &report.stage_stats;

  // All five analyses run over a ScanSource, so the same kernels stream
  // the merged on-disk runs when the study collected out-of-core.
  const analysis::ScanSource ntp_src =
      results_.ntp_runs != nullptr ? analysis::make_source(*results_.ntp_runs)
                                   : analysis::make_source(results_.ntp);

  // Fig 1: IID entropy over the NTP corpus.
  report.entropy = analysis::entropy_distribution(ntp_src, cfg, stats);

  // Table 1: the NTP corpus is the base; campaign datasets (if collected)
  // get intersection columns against it. A tiered base has no membership
  // probe — summarize_dataset inverts the intersection scan instead.
  report.table1.clear();
  report.table1.push_back(analysis::summarize_dataset(
      "NTP corpus", ntp_src, *world_, nullptr, cfg, stats));
  if (campaigned_) {
    report.table1.push_back(analysis::summarize_dataset(
        "IPv6 Hitlist", analysis::make_source(results_.hitlist.corpus),
        *world_, &ntp_src, cfg, stats));
    report.table1.push_back(analysis::summarize_dataset(
        "CAIDA", analysis::make_source(results_.caida.corpus), *world_,
        &ntp_src, cfg, stats));
  }

  // Fig 2: address/IID lifetime curves over the standard point grid.
  const std::vector<util::SimDuration> points = {
      0,
      util::kMinute,
      util::kHour,
      util::kDay,
      3 * util::kDay,
      util::kWeek,
      2 * util::kWeek,
      util::kMonth,
      2 * util::kMonth,
      6 * util::kMonth,
  };
  report.address_lifetimes =
      analysis::address_lifetimes(ntp_src, points, cfg, stats);
  report.iid_lifetimes = analysis::iid_lifetimes(ntp_src, points, cfg, stats);

  // Fig 4: top-N AS entropy profiles over the full study window.
  const util::SimTime start = config_.world.study_start;
  const util::SimTime end = start + config_.world.study_duration;
  report.top_ases = analysis::top_as_entropy_profiles(
      ntp_src, *world_, config_.analysis_top_ases, start, end, cfg, stats);

  // Fig 5: the seven-way category breakdown.
  report.categories = analysis::categorize_corpus(ntp_src, *world_, start,
                                                  end, {}, cfg, stats);
}

std::vector<std::pair<geo::CountryCode, std::uint64_t>> Study::country_mix()
    const {
  std::unordered_map<geo::CountryCode, std::uint64_t> counts;
  const auto tally = [&](const hitlist::AddressRecord& rec) {
    if (const auto as_index = world_->as_index_of(rec.address)) {
      ++counts[world_->country_of_as(*as_index)];
    }
  };
  if (results_.ntp_runs != nullptr) {
    results_.ntp_runs->for_each_merged(tally);
  } else {
    results_.ntp.for_each(tally);
  }
  std::vector<std::pair<geo::CountryCode, std::uint64_t>> out(counts.begin(),
                                                              counts.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::size_t Study::save_ntp(std::ostream& out) const {
  if (results_.ntp_runs != nullptr) return results_.ntp_runs->save(out);
  return hitlist::save_corpus(out, results_.ntp);
}

const StudyResults& Study::run(RunOptions options) {
  if (options.distributed) {
    // Distributed collection composes with the rest of the pipeline but
    // not with knobs that change who owns stage-1 state. Fail loudly
    // rather than silently diverge from the bit-identity contract.
    if (config_.spill.active()) {
      throw std::invalid_argument(
          "RunOptions::distributed is incompatible with StudyConfig::spill");
    }
    if (options.resume_from) {
      throw std::invalid_argument(
          "RunOptions::distributed is incompatible with resume_from "
          "(workers resume from their own chunk leases)");
    }
    if (options.checkpoint_sink) {
      throw std::invalid_argument(
          "RunOptions::distributed is incompatible with checkpoint_sink "
          "(checkpoints flow through the coordinator protocol)");
    }
  }
  obs::Tracer& tracer = metrics_->tracer();
  const util::SimTime study_start = config_.world.study_start;
  const util::SimTime study_end = study_start + config_.world.study_duration;
  const util::SimTime backscan_end =
      config_.backscan_start + config_.backscan_duration;
  const util::SimTime pipeline_end = std::max(study_end, backscan_end);

  // Timeline sampling: the sampler lives on this frame; sampler_ hands it
  // to per-stage configs (collector grid boundaries, campaign snapshots,
  // analysis merges). Each stage transition below closes one extra window
  // so deltas accrued between in-stage boundaries are never lost.
  std::unique_ptr<obs::TimelineSampler> sampler;
  if (options.sample_interval > 0 && config_.metrics) {
    sampler = std::make_unique<obs::TimelineSampler>(
        *metrics_, options.sample_interval, study_start);
    sampler_ = sampler.get();
  }

  // Serving: interior epochs come from the collector's merge barriers
  // (collector_config() wires the sink); the final window-end epoch is
  // published below regardless of path. Distributed collection runs the
  // cluster's own merge protocol, so it publishes the final epoch only.
  const bool serving = options.serve.enabled;
  if (serving) {
    query_service().set_retain_epochs(options.serve.retain_epochs);
    if (!options.distributed) {
      serve_epoch_interval_ = options.serve.epoch_interval;
    }
  }

  // Spans are stamped with the *simulated* window each stage covers (the
  // study runs on a virtual clock); skipped/already-done stages record no
  // span.
  const auto root = tracer.begin_span("study.run", study_start);
  if (options.collect && !collected_) {
    const auto span = tracer.begin_span("study.collect", study_start);
    if (options.distributed) {
      do_collect_distributed(*options.distributed);
    } else if (options.resume_from) {
      do_resume_collect(std::move(*options.resume_from),
                        options.checkpoint_sink);
    } else {
      do_collect(options.checkpoint_sink);
    }
    if (serving) {
      // The window-end epoch: every serving run that collected publishes
      // at least one snapshot covering the full (canonicalized) corpus.
      const analysis::ScanSource src =
          results_.ntp_runs != nullptr
              ? analysis::make_source(*results_.ntp_runs)
              : analysis::make_source(results_.ntp);
      serve_->publish(src, study_end);
    }
    serve_epoch_interval_ = 0;
    tracer.end_span(span, study_end);
    if (sampler_ != nullptr) sampler_->sample(study_end, "collect");
  }
  if (options.campaigns && !campaigned_) {
    const auto span = tracer.begin_span("study.campaigns", study_end);
    do_campaigns();
    tracer.end_span(span, study_end);
    if (sampler_ != nullptr) sampler_->sample(study_end, "campaigns");
  }
  if (options.backscan && !backscanned_) {
    const auto span =
        tracer.begin_span("study.backscan", config_.backscan_start);
    do_backscan();
    tracer.end_span(span, backscan_end);
    if (sampler_ != nullptr) sampler_->sample(backscan_end, "backscan");
  }
  if (options.analysis && !analyzed_) {
    const auto span = tracer.begin_span("study.analysis", pipeline_end);
    do_analysis();
    tracer.end_span(span, pipeline_end);
    if (sampler_ != nullptr) sampler_->sample(pipeline_end, "analysis");
  }
  tracer.end_span(root, pipeline_end);

  if (sampler) {
    results_.timeline = sampler->take();
    sampler_ = nullptr;
  }
  results_.metrics = metrics_->snapshot();
  return results_;
}

void Study::collect(const hitlist::CheckpointSink& sink) { do_collect(sink); }

void Study::resume_collect(hitlist::CollectionCheckpoint&& checkpoint,
                           const hitlist::CheckpointSink& sink) {
  do_resume_collect(std::move(checkpoint), sink);
}

void Study::run_campaigns() { do_campaigns(); }

void Study::run_backscan() { do_backscan(); }

void Study::run_analysis() { do_analysis(); }

Study Study::run(const StudyConfig& config) {
  Study study(config);
  study.run(RunOptions{});
  return study;
}

}  // namespace v6::core
