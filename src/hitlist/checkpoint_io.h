// Collection checkpoint serialization: the durable artifact that lets a
// seven-month passive collection survive a mid-run crash. A checkpoint is
// the PassiveCollector's CheckpointState cursor (window, resume point,
// counters, per-vantage health) followed by an embedded corpus snapshot
// (corpus_io format v2). Layout:
//
//   magic "V6CKPT01"             8 bytes
//   state: window_start(8) window_end(8) resume_from(8)
//          polls_attempted(8) polls_answered(8)
//          vantage count(4), then per vantage
//          polls/answered/lost_to_fault/retries/steered_polls (5 x 8)
//   state CRC32                  u32 over the state section
//   corpus snapshot              corpus_io v2 (self-checksummed)
//
// Like corpus_io, every integer is big-endian via proto::BufferWriter and
// each section carries a CRC32 so a corrupted file fails loudly at load
// time instead of resuming from garbage.
#pragma once

#include <iosfwd>
#include <string>

#include "hitlist/corpus.h"
#include "hitlist/passive_collector.h"

namespace v6::hitlist {

struct CollectionCheckpoint {
  CheckpointState state;
  Corpus corpus;
};

// Writes one checkpoint; returns bytes written. Throws std::runtime_error
// when the stream rejects the write.
std::size_t save_checkpoint(std::ostream& out, const CheckpointState& state,
                            const Corpus& corpus);

// Loads a checkpoint. Throws std::runtime_error on bad magic, truncation,
// or CRC mismatch in either section.
CollectionCheckpoint load_checkpoint(std::istream& in);

// Durable-file variants for the distributed layer: the checkpoint is
// written to `path + ".tmp"` and atomically renamed into place, so a
// crash mid-write never leaves a half-checkpoint where a reader (the
// coordinator, a recovering worker) expects a valid one. Returns bytes
// written. Throws std::runtime_error on any filesystem failure.
std::size_t save_checkpoint_file(const std::string& path,
                                 const CheckpointState& state,
                                 const Corpus& corpus);

// Loads a checkpoint from a file; same validation (and exceptions) as the
// stream loader, plus a loud error when the file cannot be opened.
CollectionCheckpoint load_checkpoint_file(const std::string& path);

}  // namespace v6::hitlist
