file(REMOVE_RECURSE
  "CMakeFiles/v6_core.dir/study.cc.o"
  "CMakeFiles/v6_core.dir/study.cc.o.d"
  "libv6_core.a"
  "libv6_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
