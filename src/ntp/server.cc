#include "ntp/server.h"

#include "proto/udp.h"

namespace v6::ntp {

NtpServer::NtpServer(sim::VantagePoint vantage, ObservationSink sink)
    : vantage_(vantage), sink_(std::move(sink)) {}

void NtpServer::bind(netsim::DataPlane& plane) {
  plane.bind_udp(
      vantage_.address, proto::kNtpPort,
      [this](const net::Ipv6Address& src, std::uint16_t /*src_port*/,
             const std::vector<std::uint8_t>& payload, util::SimTime t) {
        return handle(src, payload, t);
      });
}

std::optional<std::vector<std::uint8_t>> NtpServer::handle(
    const net::Ipv6Address& src, const std::vector<std::uint8_t>& payload,
    util::SimTime t) {
  const auto request = proto::NtpPacket::decode(payload);
  if (!request || request->mode != proto::NtpMode::kClient) {
    return std::nullopt;
  }
  record(src, t);
  // Stratum 2, reference id spells the vantage ("GPS " style ids are for
  // stratum 1; stratum 2 uses the upstream's address — any opaque value).
  const std::uint32_t refid = 0x56500000u | vantage_.id;  // "VP.."
  return proto::make_server_response(*request, t, /*stratum=*/2, refid)
      .encode();
}

void NtpServer::record(const net::Ipv6Address& client, util::SimTime t) {
  ++served_;
  if (sink_) sink_({client, t, vantage_.id});
}

}  // namespace v6::ntp
