#include "dist/worker.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "dist/obs_report.h"
#include "dist/transport.h"
#include "hitlist/checkpoint_io.h"

namespace v6::dist {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

Worker::Worker(const NodeEnv& env, const WorkerConfig& config)
    : env_(env), config_(config) {
  if (env_.world == nullptr || env_.plane == nullptr || env_.dns == nullptr) {
    throw std::invalid_argument("Worker: NodeEnv must be fully wired");
  }
  if (config_.dir.empty()) {
    throw std::invalid_argument("Worker: run directory required");
  }
}

void Worker::run() {
  Mailbox inbox(config_.dir + "/to-worker-" + std::to_string(config_.id));
  Mailbox outbox(config_.dir + "/to-coordinator");
  std::uint64_t tx_seq = 0;
  const auto send = [&](FrameType type, std::uint32_t subset,
                        std::uint32_t epoch, std::uint64_t sim_time,
                        std::vector<std::uint8_t> payload = {}) {
    Frame frame;
    frame.type = type;
    frame.sender = config_.id;
    frame.subset = subset;
    frame.epoch = epoch;
    frame.seq = tx_seq++;
    frame.sim_time = sim_time;
    frame.payload = std::move(payload);
    outbox.post(frame);
  };

  send(FrameType::kHello, kNoSubset, 0,
       static_cast<std::uint64_t>(env_.start));

  Clock::time_point last_activity = Clock::now();
  while (true) {
    const std::vector<Frame> frames = inbox.drain();
    if (!frames.empty()) last_activity = Clock::now();
    for (const Frame& frame : frames) {
      if (frame.type == FrameType::kShutdown) return;
      if (frame.type == FrameType::kRevoke) continue;  // idle: nothing held
      if (frame.type != FrameType::kLeaseGrant) continue;

      const LeaseGrant grant = decode_lease_grant(frame.payload);
      const std::uint32_t subset = frame.subset;
      const std::uint32_t epoch = frame.epoch;
      if (grant.subset_count == 0 || subset >= grant.subset_count) {
        throw std::runtime_error("worker: malformed lease grant");
      }

      hitlist::CollectorConfig cfg = env_.collector;
      cfg.checkpoint_interval =
          static_cast<util::SimDuration>(grant.chunk_interval);
      const std::size_t vantage_count = env_.world->vantages().size();
      cfg.vantage_filter.assign(vantage_count, false);
      for (std::size_t v = 0; v < vantage_count; ++v) {
        cfg.vantage_filter[v] = (v % grant.subset_count == subset);
      }
      cfg.count_unassigned = (subset == 0);

      hitlist::CheckpointState from;
      hitlist::Corpus corpus(1 << 12);
      if (!grant.checkpoint_path.empty()) {
        if (const auto why = validate_artifact_path(grant.checkpoint_path)) {
          throw std::runtime_error("worker: hostile checkpoint path: " + *why);
        }
        hitlist::CollectionCheckpoint ckpt = hitlist::load_checkpoint_file(
            config_.dir + "/" + grant.checkpoint_path);
        from = std::move(ckpt.state);
        corpus = std::move(ckpt.corpus);
      } else {
        from.window_start = static_cast<util::SimTime>(grant.window_start);
        from.window_end = static_cast<util::SimTime>(grant.window_end);
        from.resume_from = static_cast<util::SimTime>(grant.window_start);
      }

      // Per-lease observability: a private registry + sampler whose grid
      // coincides with the checkpoint grid (same interval, anchored at the
      // window start), so wiring them adds no merge barriers. The pair is
      // uploaded as a kObsReport frame at the completion barrier; a killed
      // worker uploads nothing and the replacement lease's report carries
      // the checkpoint-restored cumulative totals.
      obs::Registry lease_registry;
      obs::TimelineSampler lease_sampler(lease_registry,
                                         cfg.checkpoint_interval,
                                         from.window_start);
      cfg.metrics = &lease_registry;
      cfg.sampler = &lease_sampler;

      hitlist::PassiveCollector collector(*env_.world, *env_.plane, *env_.dns,
                                          cfg);
      const auto sink = [&](const hitlist::CheckpointState& state,
                            const hitlist::Corpus& snapshot) {
        Artifact artifact;
        artifact.path = "ckpt/s" + std::to_string(subset) + "-e" +
                        std::to_string(epoch) + "-t" +
                        std::to_string(state.resume_from) + ".v6ckpt";
        artifact.bytes = hitlist::save_checkpoint_file(
            config_.dir + "/" + artifact.path, state, snapshot);
        send(FrameType::kHeartbeat, subset, epoch,
             static_cast<std::uint64_t>(state.resume_from));
        send(FrameType::kCheckpointUpload, subset, epoch,
             static_cast<std::uint64_t>(state.resume_from),
             encode_artifact(artifact));
        if (config_.chunk_delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(config_.chunk_delay_ms));
        }
      };
      collector.resume(corpus, from, {}, sink);

      // Completion: the final (state, corpus) as one durable artifact the
      // coordinator merges from.
      hitlist::CheckpointState final_state;
      final_state.window_start = from.window_start;
      final_state.window_end = from.window_end;
      final_state.resume_from = from.window_end;
      final_state.polls_attempted = collector.polls_attempted();
      final_state.polls_answered = collector.polls_answered();
      final_state.vantage_health = collector.vantage_health();
      Artifact artifact;
      artifact.path = "ckpt/s" + std::to_string(subset) + "-final-e" +
                      std::to_string(epoch) + ".v6ckpt";
      artifact.bytes = hitlist::save_checkpoint_file(
          config_.dir + "/" + artifact.path, final_state, corpus);
      // Close the lease's final window (the collector leaves the
      // window-end sample to the caller) and upload the observability
      // report at the completion barrier, just before kComplete.
      lease_sampler.sample(from.window_end, cfg.sampler_stage);
      const ObsReport obs_report =
          build_obs_report(collector, lease_sampler.take());
      send(FrameType::kObsReport, subset, epoch,
           static_cast<std::uint64_t>(from.window_end),
           encode_obs_report(obs_report));
      send(FrameType::kComplete, subset, epoch,
           static_cast<std::uint64_t>(from.window_end),
           encode_artifact(artifact));
      last_activity = Clock::now();
    }
    if (Clock::now() - last_activity >
        std::chrono::milliseconds(config_.max_idle_ms)) {
      throw std::runtime_error("worker: no shutdown within the idle deadline");
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.poll_interval_ms));
  }
}

}  // namespace v6::dist
