#include "hitlist/campaigns.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "scan/target_gen.h"
#include "scan/yarrp.h"
#include "scan/zmap6.h"
#include "util/rng.h"

namespace v6::hitlist {

namespace {

// Synthetic "public sources": addresses the campaign can learn without
// probing. Servers published in DNS, a slice of CPE WAN addresses visible
// through reverse DNS, and rDNS-named router interfaces.
std::vector<net::Ipv6Address> public_source_addresses(
    const sim::World& world, util::SimTime t, double rdns_cpe_fraction,
    double client_fraction) {
  std::vector<net::Ipv6Address> out = world.dns_seed_addresses();
  const auto fraction_hits = [](double fraction, std::uint64_t h) {
    return h < static_cast<std::uint64_t>(
                   fraction >= 1.0 ? ~std::uint64_t{0} : fraction * 0x1p64);
  };
  for (const auto& site : world.sites()) {
    if (site.cpe == sim::kNoDevice) continue;
    const sim::Device& cpe = world.devices()[site.cpe];
    if (fraction_hits(rdns_cpe_fraction, util::mix64(cpe.seed ^ 0x4d45))) {
      out.push_back(world.device_address(site.cpe, t));
    }
  }
  // Crowdsourced / log-derived client sightings: ephemeral end-host
  // addresses that no probe would ever guess. Re-rolled per snapshot
  // (different users show up in the feeds each week).
  for (const auto& dev : world.devices()) {
    if (dev.kind == sim::DeviceKind::kCpe ||
        dev.kind == sim::DeviceKind::kServer) {
      continue;
    }
    // Panel/log feeds skew toward devices the NTP study never sees (their
    // time sync uses vendor servers), which is why the paper found the
    // datasets nearly disjoint.
    if (dev.ntp.uses_pool) continue;
    if (fraction_hits(client_fraction,
                      util::mix64(dev.seed ^ 0xc10bd ^
                                  static_cast<std::uint64_t>(t)))) {
      out.push_back(world.device_address(dev.id, t));
    }
  }
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    const sim::AsInfo& as = world.ases()[ai];
    for (std::uint32_t r = 0; r < as.router_count; ++r) {
      if (util::mix64(as.seed ^ 0x4d46 ^ r) % 16 == 0) {
        out.push_back(world.router_address(ai, r, 1));
      }
    }
  }
  return out;
}

// The campaign's vantage: the first world vantage point (a cloud VM), or a
// fixed well-known address in an empty world.
net::Ipv6Address campaign_source(const sim::World& world) {
  if (!world.vantages().empty()) return world.vantages().front().address;
  return net::Ipv6Address::from_u64(0x2001067c00000000ULL, 0x1);
}

}  // namespace

HitlistResult run_hitlist_campaign(const sim::World& world,
                                   netsim::DataPlane& plane,
                                   const HitlistCampaignConfig& config) {
  HitlistResult result;
  util::Rng rng(util::mix64(config.seed ^ 0x6175));
  const net::Ipv6Address source = campaign_source(world);

  std::unordered_set<net::Ipv6Address> known;          // published addrs
  std::unordered_set<net::Ipv6Prefix> active64, active48;
  std::unordered_set<net::Ipv6Prefix> aliased_set, alias_checked;
  std::vector<net::Ipv6Prefix> aliased_list;
  // Aliased /64s seen per /48: two siblings trigger testing the /48.
  std::unordered_map<net::Ipv6Prefix, int> aliased64_per_48;

  // BGP-driven alias detection: sample /48s under every routed /32 and,
  // where several siblings in one /36 test aliased, test (and publish) the
  // covering /36 itself. This is how whole CGN/CDN regions end up on the
  // Hitlist's aliased-prefix list.
  {
    AliasDetector detector(plane, {source, 8, 8, rng.next()});
    constexpr int kSamplesPerPrefix = 64;
    for (const auto& as : world.ases()) {
      std::array<int, 16> hits_per_region{};
      std::vector<net::Ipv6Prefix> found48s;
      for (int k = 0; k < kSamplesPerPrefix; ++k) {
        const std::uint64_t s48 =
            util::mix64(config.seed ^ as.prefix_hi ^
                        static_cast<std::uint64_t>(k) * 0x9e3779b9ULL) &
            0xffff;
        const net::Ipv6Prefix p48(
            net::Ipv6Address::from_u64(as.prefix_hi | (s48 << 16), 0), 48);
        if (detector.is_aliased(p48, config.start)) {
          ++hits_per_region[s48 >> 12];
          found48s.push_back(p48);
        }
      }
      for (int region = 0; region < 16; ++region) {
        if (hits_per_region[region] < 2) continue;
        const net::Ipv6Prefix p36(
            net::Ipv6Address::from_u64(
                as.prefix_hi | (static_cast<std::uint64_t>(region) << 28), 0),
            36);
        if (detector.is_aliased(p36, config.start)) {
          aliased_set.insert(p36);
          aliased_list.push_back(p36);
          // The /48s are subsumed by the /36.
          std::erase_if(found48s, [&](const net::Ipv6Prefix& p) {
            return p36.contains(p);
          });
        }
      }
      for (const auto& p48 : found48s) {
        aliased_set.insert(p48);
        aliased_list.push_back(p48);
      }
    }
  }

  // Aliased prefixes are published at /64, /48 or /36; membership checks
  // truncate to those three lengths.
  const auto in_aliased = [&aliased_set](const net::Ipv6Address& a) {
    return aliased_set.contains(net::Ipv6Prefix(a, 64)) ||
           aliased_set.contains(net::Ipv6Prefix(a, 48)) ||
           aliased_set.contains(net::Ipv6Prefix(a, 36));
  };

  const util::SimTime end = config.start + config.duration;
  for (util::SimTime snap = config.start; snap < end;
       snap += config.snapshot_interval) {
    ++result.snapshots;
    scan::Zmap6Scanner zmap(plane,
                            {source, 100000, 0, rng.next(),
                             scan::ProbeProtocol::kIcmpv6Echo, config.metrics});
    scan::YarrpTracer yarrp(
        plane,
        {source, config.yarrp_max_hops, 50000, rng.next(), config.metrics});

    // Re-verify previously published addresses: each weekly release
    // contains what is *still* responsive, so records keep fresh
    // last-seen timestamps (Fig 5 compares against such a snapshot).
    if (!known.empty()) {
      std::vector<net::Ipv6Address> recheck(known.begin(), known.end());
      for (const auto& rec : zmap.scan(recheck, snap)) {
        if (rec.responded) result.corpus.add(rec.target, snap);
      }
    }

    // Frontier: public sources plus TGA expansion of known structure.
    std::vector<net::Ipv6Address> frontier = public_source_addresses(
        world, snap, config.rdns_cpe_fraction,
        config.crowdsourced_client_fraction);
    if (snap == config.start && config.routed_seed_fraction > 0.0) {
      const auto routed = scan::routed_slash48_targets(
          world, config.routed_seed_fraction, config.seed ^ 0xb69);
      frontier.insert(frontier.end(), routed.begin(), routed.end());
    }
    {
      std::vector<net::Ipv6Prefix> v64(active64.begin(), active64.end());
      std::vector<net::Ipv6Prefix> v48(active48.begin(), active48.end());
      const auto low_iids = scan::low_iid_candidates(v64);
      frontier.insert(frontier.end(), low_iids.begin(), low_iids.end());
      const auto sweeps = scan::subnet_sweep_candidates(v48, 16);
      frontier.insert(frontier.end(), sweeps.begin(), sweeps.end());
    }
    if (frontier.size() > config.max_frontier) {
      rng.shuffle(frontier);
      frontier.resize(config.max_frontier);
    }

    for (std::uint32_t iteration = 0; iteration < config.tga_iterations;
         ++iteration) {
      if (frontier.empty()) break;
      std::vector<net::Ipv6Address> found;

      // ZMap the frontier: ICMPv6 first, then TCP 443 and 80 against the
      // silent remainder (the Hitlist probes multiple protocols; TCP
      // reaches ICMP-silent servers and RST-ing hosts).
      std::vector<net::Ipv6Address> silent;
      for (const auto& rec : zmap.scan(frontier, snap)) {
        (rec.responded ? found : silent)
            .push_back(rec.target);
      }
      for (const auto protocol :
           {scan::ProbeProtocol::kTcpSyn443, scan::ProbeProtocol::kTcpSyn80}) {
        if (silent.empty()) break;
        scan::Zmap6Scanner tcp_zmap(
            plane, {source, 100000, 0, rng.next(), protocol, config.metrics});
        std::vector<net::Ipv6Address> still_silent;
        for (const auto& rec : tcp_zmap.scan(silent, snap)) {
          (rec.responded ? found : still_silent).push_back(rec.target);
        }
        silent = std::move(still_silent);
        result.probes_sent += tcp_zmap.probes_sent();
      }
      // Yarrp a sample: traces harvest periphery (CPE) and core routers.
      std::vector<net::Ipv6Address> trace_targets;
      for (const auto& target : frontier) {
        if (rng.chance(config.trace_fraction)) trace_targets.push_back(target);
      }
      const auto traces = yarrp.trace(trace_targets, snap);
      for (const auto& addr : scan::YarrpTracer::discovered(traces)) {
        found.push_back(addr);
      }

      // Alias filtering on newly active /64s, then publication.
      std::vector<net::Ipv6Address> next_frontier;
      for (const auto& addr : found) {
        const auto p64 = net::slash64_of(addr);
        if (in_aliased(addr)) continue;
        if (alias_checked.insert(p64).second) {
          AliasDetector detector(
              plane, {source, 8, 8, rng.next()});
          if (detector.is_aliased(p64, snap)) {
            aliased_set.insert(p64);
            aliased_list.push_back(p64);
            // Aggregate upward: sibling aliased /64s suggest the whole
            // /48 is aliased; verify and publish the aggregate.
            const auto p48 = net::slash48_of(addr);
            if (++aliased64_per_48[p48] == 2 &&
                !aliased_set.contains(p48) &&
                detector.is_aliased(p48, snap)) {
              aliased_set.insert(p48);
              aliased_list.push_back(p48);
            }
            continue;
          }
        }
        if (known.insert(addr).second) {
          result.corpus.add(addr, snap);
          if (active64.insert(p64).second) {
            // Fresh /64: fodder for the next TGA round.
            for (const auto& cand :
                 scan::low_iid_candidates(std::span(&p64, 1))) {
              next_frontier.push_back(cand);
            }
          }
          active48.insert(net::slash48_of(addr));
        }
      }
      frontier = std::move(next_frontier);
      if (frontier.size() > config.max_frontier) {
        rng.shuffle(frontier);
        frontier.resize(config.max_frontier);
      }
    }
    result.probes_sent += zmap.probes_sent() + yarrp.probes_sent();
    if (config.sampler != nullptr) {
      config.sampler->sample(
          std::min<util::SimTime>(snap + config.snapshot_interval, end),
          "campaigns");
    }
  }

  std::sort(aliased_list.begin(), aliased_list.end());
  aliased_list.erase(std::unique(aliased_list.begin(), aliased_list.end()),
                     aliased_list.end());
  result.aliased_prefixes = std::move(aliased_list);

  // Retro-filter: alias knowledge accumulates across snapshots, so an
  // address published early can later turn out to lie inside an aliased
  // aggregate. The published responsive list never contains such
  // artifacts (the real Hitlist re-filters every snapshot the same way).
  Corpus filtered(result.corpus.size());
  result.corpus.for_each([&](const AddressRecord& rec) {
    if (!in_aliased(rec.address)) filtered.add_record(rec);
  });
  result.corpus = std::move(filtered);
  return result;
}

CaidaResult run_caida_campaign(const sim::World& world,
                               netsim::DataPlane& plane,
                               const CaidaCampaignConfig& config) {
  CaidaResult result;
  const net::Ipv6Address source = campaign_source(world);
  auto targets = scan::routed_slash48_targets(world, config.slash48_fraction,
                                              config.seed);
  if (targets.empty()) return result;

  // Spread traces uniformly across the campaign window; Yarrp advances
  // time with its probe rate, so chunk the target list per day.
  const auto days = std::max<util::SimDuration>(
      1, config.duration / util::kDay);
  const std::size_t per_day =
      (targets.size() + static_cast<std::size_t>(days) - 1) /
      static_cast<std::size_t>(days);
  std::size_t offset = 0;
  for (util::SimDuration day = 0; day < days && offset < targets.size();
       ++day) {
    const std::size_t n = std::min(per_day, targets.size() - offset);
    scan::YarrpTracer yarrp(
        plane,
        {source, config.max_hops, 50000,
         config.seed ^ (0x471ULL + static_cast<std::uint64_t>(day)),
         config.metrics});
    const std::span<const net::Ipv6Address> chunk(targets.data() + offset, n);
    const util::SimTime t0 = config.start + day * util::kDay;
    const auto traces = yarrp.trace(chunk, t0);
    result.traces += traces.size();
    for (const auto& addr : scan::YarrpTracer::discovered(traces)) {
      result.corpus.add(addr, t0);
    }
    result.probes_sent += yarrp.probes_sent();
    offset += n;
  }
  return result;
}

}  // namespace v6::hitlist
