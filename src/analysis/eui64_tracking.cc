#include "analysis/eui64_tracking.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/eui64.h"

namespace v6::analysis {

const char* to_string(TrackingClass c) noexcept {
  switch (c) {
    case TrackingClass::kNotTrackable:
      return "not trackable";
    case TrackingClass::kMostlyStatic:
      return "mostly static";
    case TrackingClass::kPrefixReassignment:
      return "prefix reassignment";
    case TrackingClass::kMacReuse:
      return "MAC reuse";
    case TrackingClass::kChangingProviders:
      return "changing providers";
    case TrackingClass::kUserMovement:
      return "user movement";
  }
  return "?";
}

Eui64Tracker::Eui64Tracker(const hitlist::Corpus& corpus,
                           const sim::World& world)
    : world_(&world) {
  struct Raw {
    std::vector<TimelinePoint> points;
    std::uint32_t first = ~std::uint32_t{0};
    std::uint32_t last = 0;
  };
  std::unordered_map<net::MacAddress, Raw> by_mac;

  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    ++corpus_addresses_;
    const auto mac = net::mac_from_eui64(rec.address);
    if (!mac) return;
    ++eui64_addresses_;
    Raw& raw = by_mac[*mac];
    TimelinePoint point;
    point.first_seen = rec.first_seen;
    point.slash64_hi = rec.address.hi64();
    if (const auto as_index = world.as_index_of(rec.address)) {
      point.asn = world.ases()[*as_index].asn;
      point.country = world.country_of_as(*as_index);
    }
    raw.points.push_back(point);
    raw.first = std::min(raw.first, rec.first_seen);
    raw.last = std::max(raw.last, rec.last_seen);
  });

  tracks_.reserve(by_mac.size());
  ranges_.reserve(by_mac.size());
  for (auto& [mac, raw] : by_mac) {
    std::sort(raw.points.begin(), raw.points.end(),
              [](const TimelinePoint& a, const TimelinePoint& b) {
                return a.first_seen < b.first_seen;
              });
    MacTrack track;
    track.mac = mac;
    track.first_seen = raw.first;
    track.last_seen = raw.last;

    std::unordered_set<std::uint64_t> slash64s;
    std::unordered_set<sim::Asn> asns;
    std::unordered_set<std::uint16_t> countries;
    std::uint64_t prev64 = 0;
    bool have_prev = false;
    for (const auto& p : raw.points) {
      slash64s.insert(p.slash64_hi);
      if (p.asn != 0) asns.insert(p.asn);
      if (p.country.valid()) countries.insert(p.country.value());
      if (have_prev && p.slash64_hi != prev64) ++track.transitions;
      prev64 = p.slash64_hi;
      have_prev = true;
    }
    track.slash64s = static_cast<std::uint32_t>(slash64s.size());
    track.ases = static_cast<std::uint32_t>(asns.size());
    track.countries = static_cast<std::uint32_t>(countries.size());

    const std::size_t begin = sightings_.size();
    sightings_.insert(sightings_.end(), raw.points.begin(), raw.points.end());
    ranges_.emplace_back(begin, sightings_.size());
    tracks_.push_back(track);
  }
}

TrackingClass Eui64Tracker::classify(const MacTrack& track) noexcept {
  if (track.slash64s < 2) return TrackingClass::kNotTrackable;
  const bool high_as = track.ases > 1;
  const bool high_country = track.countries > 1;
  const bool high_transitions = track.transitions > 10;
  if (high_country) return TrackingClass::kMacReuse;
  if (high_as) {
    return high_transitions ? TrackingClass::kUserMovement
                            : TrackingClass::kChangingProviders;
  }
  if (high_transitions) return TrackingClass::kPrefixReassignment;
  return TrackingClass::kMostlyStatic;
}

std::uint64_t Eui64Tracker::trackable_macs() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks_) {
    if (t.slash64s >= 2) ++n;
  }
  return n;
}

std::vector<std::pair<TrackingClass, std::uint64_t>>
Eui64Tracker::class_counts() const {
  std::array<std::uint64_t, 6> counts{};
  for (const auto& t : tracks_) {
    counts[static_cast<std::size_t>(classify(t))]++;
  }
  std::vector<std::pair<TrackingClass, std::uint64_t>> out;
  for (std::size_t i = 1; i < counts.size(); ++i) {  // skip kNotTrackable
    out.emplace_back(static_cast<TrackingClass>(i), counts[i]);
  }
  return out;
}

util::EmpiricalDistribution Eui64Tracker::lifetime_distribution() const {
  std::vector<double> samples;
  samples.reserve(tracks_.size());
  for (const auto& t : tracks_) {
    samples.push_back(static_cast<double>(t.lifetime()));
  }
  return util::EmpiricalDistribution(std::move(samples));
}

std::vector<std::pair<std::uint32_t, double>> Eui64Tracker::slash64_ccdf(
    std::span<const std::uint32_t> points) const {
  std::vector<std::pair<std::uint32_t, double>> out;
  if (tracks_.empty()) return out;
  for (const auto n : points) {
    std::uint64_t more = 0;
    for (const auto& t : tracks_) {
      if (t.slash64s > n) ++more;
    }
    out.emplace_back(n, static_cast<double>(more) /
                            static_cast<double>(tracks_.size()));
  }
  return out;
}

std::vector<TimelinePoint> Eui64Tracker::timeline(
    const net::MacAddress& mac) const {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].mac == mac) {
      const auto [begin, end] = ranges_[i];
      return {sightings_.begin() + static_cast<std::ptrdiff_t>(begin),
              sightings_.begin() + static_cast<std::ptrdiff_t>(end)};
    }
  }
  return {};
}

std::vector<std::pair<TrackingClass, net::MacAddress>>
Eui64Tracker::exemplars() const {
  // Pick, per class, the trackable MAC with the most sightings — the
  // richest timeline to plot.
  std::array<std::optional<std::size_t>, 6> best;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const auto cls = static_cast<std::size_t>(classify(tracks_[i]));
    if (cls == 0) continue;
    const std::size_t n = ranges_[i].second - ranges_[i].first;
    if (!best[cls] ||
        n > ranges_[*best[cls]].second - ranges_[*best[cls]].first) {
      best[cls] = i;
    }
  }
  std::vector<std::pair<TrackingClass, net::MacAddress>> out;
  for (std::size_t cls = 1; cls < best.size(); ++cls) {
    if (best[cls]) {
      out.emplace_back(static_cast<TrackingClass>(cls),
                       tracks_[*best[cls]].mac);
    }
  }
  return out;
}

}  // namespace v6::analysis
