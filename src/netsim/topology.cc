#include "netsim/topology.h"

#include "util/rng.h"

namespace v6::netsim {

namespace {

// Stable router pick within an AS, keyed on the destination /48 so nearby
// targets share infrastructure.
std::uint32_t pick_router(const sim::AsInfo& as, std::uint64_t key) {
  if (as.router_count == 0) return 0;
  return static_cast<std::uint32_t>(util::mix64(as.seed ^ key) %
                                    as.router_count);
}

}  // namespace

std::optional<std::uint32_t> Topology::backbone_of(
    std::uint16_t country_index) const {
  const auto ases = world_->ases();
  for (std::uint32_t i = 0; i < ases.size(); ++i) {
    if (ases[i].country_index == country_index &&
        ases[i].type == sim::AsType::kTransit) {
      return i;
    }
  }
  return std::nullopt;
}

std::vector<Hop> Topology::path(const net::Ipv6Address& src,
                                const net::Ipv6Address& dst,
                                util::SimTime t) const {
  std::vector<Hop> hops;
  const std::uint64_t dst48 = dst.hi64() >> 16;
  const auto src_as = world_->as_index_of(src);
  const auto dst_as = world_->as_index_of(dst);
  if (src.hi64() == dst.hi64()) return hops;  // same /64: on-link

  auto add_router = [&](std::uint32_t as_index, std::uint64_t key) {
    const sim::AsInfo& as = world_->ases()[as_index];
    if (as.router_count == 0) return;
    const std::uint32_t r = pick_router(as, key);
    hops.push_back({world_->router_address(as_index, r, 1), true});
  };

  // Egress through the source AS.
  if (src_as) {
    add_router(*src_as, 0xe6e55 ^ dst48);
    const auto src_bb =
        backbone_of(world_->ases()[*src_as].country_index);
    if (src_bb && (!dst_as || *src_bb != *dst_as)) {
      add_router(*src_bb, 0xbb01 ^ dst48);
    }
  }
  if (!dst_as) return hops;  // falls off the edge; probe will die here

  // Ingress: destination country backbone, then the destination AS.
  const sim::AsInfo& das = world_->ases()[*dst_as];
  const auto dst_bb = backbone_of(das.country_index);
  if (dst_bb && *dst_bb != *dst_as &&
      (!src_as || *dst_bb != *src_as)) {
    add_router(*dst_bb, 0xbb02 ^ dst48);
  }
  if (!src_as || *src_as != *dst_as) {
    add_router(*dst_as, 0xed6e ^ dst48);  // AS edge
  }
  add_router(*dst_as, 0xc04e ^ dst48);  // AS core, nearer the target

  // Customer-site targets traverse the site's CPE last (the "network
  // periphery" hop that CPE-focused campaigns harvest).
  if (const auto site_id = world_->site_at(dst, t)) {
    const sim::Site& site = world_->sites()[*site_id];
    if (site.cpe != sim::kNoDevice) {
      const net::Ipv6Address cpe_addr =
          world_->device_address(site.cpe, t);
      if (cpe_addr != dst) {
        hops.push_back(
            {cpe_addr, world_->devices()[site.cpe].responds_icmp});
      }
    }
  }
  return hops;
}

}  // namespace v6::netsim
