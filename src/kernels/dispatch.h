// Runtime backend dispatch for the batched hot-path kernels (batch.h).
//
// Every batch kernel ships a scalar reference implementation and, on
// x86-64, an AVX2 implementation compiled into its own translation unit
// with -mavx2 (never via a global -march flag: common objects must stay
// runnable on any x86-64, so vector codegen is quarantined to the one TU
// the dispatcher only ever calls after a CPUID check). The selected
// backend is a pure function of three inputs, in precedence order:
//
//   1. the V6_FORCE_SCALAR environment variable ("" or "0" = off,
//      anything else pins the scalar backend) — the pin CI and tests use
//      to compare backends on any host;
//   2. an explicit force_backend() override (the CLI's --kernels flag);
//   3. CPUID: AVX2 when the running CPU reports it, scalar otherwise.
//
// Backends are bit-identical by construction (asserted by tests and by
// bench_kernels per row), so dispatch only ever trades wall-clock time —
// no output byte anywhere in the pipeline depends on the choice.
//
// Thread-safety: the decision is cached in one atomic; concurrent first
// calls race benignly (every thread computes the same value). Overrides
// (force_backend) are meant for process start-up, before hot loops run.
#pragma once

#include <cstdint>
#include <optional>

namespace v6::obs {
class Registry;
}  // namespace v6::obs

namespace v6::kernels {

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1 };

const char* to_string(Backend backend) noexcept;

// The backend every batch kernel will use for this call, after applying
// the precedence above. Cached after the first call.
Backend active_backend() noexcept;

// What CPUID alone would pick on this machine (ignores the env pin and
// any force_backend() override).
Backend detected_backend() noexcept;

// Pins the backend (nullopt = back to env/CPUID resolution). Call at
// process start-up; later calls take effect but mid-run flips are only
// a wall-clock change, never a results change.
void force_backend(std::optional<Backend> backend) noexcept;

// The dispatch decision, as a pure function — unit-testable without
// mutating process state. `env_force_scalar` is the raw V6_FORCE_SCALAR
// value (nullptr when unset).
Backend resolve_backend(const char* env_force_scalar,
                        std::optional<Backend> forced,
                        bool cpu_has_avx2) noexcept;

// Records the dispatch choice once as the `v6_kernel_backend` info gauge
// (value 1, label backend=<name>), so every metrics export names the
// kernel backend the run used.
void register_backend_gauge(obs::Registry& registry);

}  // namespace v6::kernels
