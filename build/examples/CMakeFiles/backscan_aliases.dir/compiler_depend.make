# Empty compiler generated dependencies file for backscan_aliases.
# This may be replaced when dependencies are built.
