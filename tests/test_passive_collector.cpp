#include "hitlist/passive_collector.h"

#include <gtest/gtest.h>

#include <set>

namespace v6::hitlist {
namespace {

class PassiveCollectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 55;
    config.total_sites = 300;
    config.study_duration = 14 * util::kDay;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }
  static sim::World* world_;
};

sim::World* PassiveCollectorTest::world_ = nullptr;

Corpus collect(const sim::World& world, const CollectorConfig& config,
               util::SimTime start, util::SimTime end,
               const ObservationHook& hook = {}) {
  netsim::DataPlane plane(world, {config.loss_rate, 1});
  netsim::PoolDns dns(world);
  PassiveCollector collector(world, plane, dns, config);
  Corpus corpus(1 << 12);
  collector.run(corpus, start, end, hook);
  return corpus;
}

void expect_identical_corpora(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.total_observations(), b.total_observations());
  a.for_each([&](const AddressRecord& rec) {
    const auto* other = b.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->first_seen, rec.first_seen);
    EXPECT_EQ(other->last_seen, rec.last_seen);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->vantage_mask, rec.vantage_mask);
  });
}

TEST_F(PassiveCollectorTest, CollectsObservations) {
  const auto corpus =
      collect(*world_, {false, 0.0, 3}, 0, 7 * util::kDay);
  EXPECT_GT(corpus.size(), 1000u);
  EXPECT_GE(corpus.total_observations(), corpus.size());
}

TEST_F(PassiveCollectorTest, FastAndWirePathsAreBitIdenticalAtZeroLoss) {
  // With loss disabled the two execution paths consume identical RNG
  // streams (two draws per poll attempt), so not just the address set but
  // every record field must agree.
  const auto fast =
      collect(*world_, {false, 0.0, 3}, 0, 3 * util::kDay);
  const auto wire =
      collect(*world_, {true, 0.0, 3}, 0, 3 * util::kDay);
  expect_identical_corpora(fast, wire);
}

TEST_F(PassiveCollectorTest, RetriesRecoverPollsLostToTransit) {
  // RFC 5905-style persistence: at heavy loss a client that re-sends
  // unanswered polls hears back strictly more often than a fire-once one,
  // and at zero loss retries change nothing.
  CollectorConfig fire_once{false, 0.4, 3};
  CollectorConfig persistent = fire_once;
  persistent.retry_limit = 3;

  netsim::DataPlane plane(*world_, {0.4, 1});
  netsim::PoolDns dns(*world_);
  PassiveCollector once(*world_, plane, dns, fire_once);
  Corpus once_corpus(1 << 12);
  once.run(once_corpus, 0, 2 * util::kDay);
  PassiveCollector retrying(*world_, plane, dns, persistent);
  Corpus retry_corpus(1 << 12);
  retrying.run(retry_corpus, 0, 2 * util::kDay);

  ASSERT_GT(once.polls_attempted(), 0u);
  // Fire-once at 40% loss answers ~36% of polls; 3 retries lift the
  // per-poll answer odds to ~84%.
  EXPECT_GT(static_cast<double>(retrying.polls_answered()),
            1.5 * static_cast<double>(once.polls_answered()));
  EXPECT_GT(retry_corpus.total_observations(),
            once_corpus.total_observations());

  CollectorConfig lossless_retry{false, 0.0, 3};
  lossless_retry.retry_limit = 3;
  const auto with = collect(*world_, lossless_retry, 0, util::kDay);
  const auto without = collect(*world_, {false, 0.0, 3}, 0, util::kDay);
  expect_identical_corpora(with, without);
}

TEST_F(PassiveCollectorTest, WirePathValidatesServerResponses) {
  netsim::DataPlane plane(*world_, {0.0, 1});
  netsim::PoolDns dns(*world_);
  PassiveCollector collector(*world_, plane, dns, {true, 0.0, 3});
  Corpus corpus(1 << 12);
  collector.run(corpus, 0, util::kDay);
  EXPECT_GT(collector.polls_attempted(), 0u);
  // Lossless wire path: every poll that reached a server got a valid,
  // origin-matching answer.
  EXPECT_EQ(collector.polls_answered(), collector.polls_attempted());
}

TEST_F(PassiveCollectorTest, LossReducesObservations) {
  const auto lossless =
      collect(*world_, {false, 0.0, 3}, 0, 3 * util::kDay);
  const auto lossy =
      collect(*world_, {false, 0.3, 3}, 0, 3 * util::kDay);
  EXPECT_LT(lossy.total_observations(),
            lossless.total_observations() * 0.8);
}

TEST_F(PassiveCollectorTest, HookSeesEveryObservation) {
  std::uint64_t hook_calls = 0;
  std::set<std::uint8_t> vantages;
  const auto corpus = collect(
      *world_, {false, 0.0, 3}, 0, 2 * util::kDay,
      [&](const ntp::Observation& obs, const net::Ipv6Address& vantage) {
        ++hook_calls;
        vantages.insert(obs.vantage);
        EXPECT_FALSE(vantage.is_unspecified());
      });
  EXPECT_EQ(hook_calls, corpus.total_observations());
  EXPECT_GT(vantages.size(), 10u);  // geo steering spreads across servers
}

TEST_F(PassiveCollectorTest, OnlyPoolDevicesAppear) {
  const auto corpus =
      collect(*world_, {false, 0.0, 3}, 0, 2 * util::kDay);
  // Every observed address must resolve to a pool-using device (or be an
  // ephemeral address of one at observation time). Spot-check via count:
  // non-pool devices never enter the schedule, so polls == observations.
  netsim::DataPlane plane(*world_, {0.0, 1});
  netsim::PoolDns dns(*world_);
  PassiveCollector collector(*world_, plane, dns, {false, 0.0, 3});
  Corpus again(1 << 12);
  collector.run(again, 0, 2 * util::kDay);
  EXPECT_EQ(collector.polls_attempted(), again.total_observations());
}

TEST_F(PassiveCollectorTest, BurstsYieldMultipleSightingsPerSync) {
  // Find a bursting pool device and verify its address records carry
  // multiple observations seconds apart.
  const auto corpus = collect(*world_, {false, 0.0, 3}, 0, util::kDay);
  bool found_burst_record = false;
  corpus.for_each([&](const AddressRecord& rec) {
    if (rec.count >= 4 && rec.lifetime() <= 30) found_burst_record = true;
  });
  EXPECT_TRUE(found_burst_record)
      << "expected at least one iburst-style record (>=4 sightings within "
         "seconds)";
}

TEST_F(PassiveCollectorTest, PollCountsCountBurstPackets) {
  netsim::DataPlane plane(*world_, {0.0, 1});
  netsim::PoolDns dns(*world_);
  PassiveCollector collector(*world_, plane, dns, {false, 0.0, 3});
  Corpus corpus(1 << 12);
  collector.run(corpus, 0, util::kDay);
  // Bursting devices send several packets per sync, so attempted polls
  // exceed unique sync events but equal total observations (no loss).
  EXPECT_EQ(collector.polls_attempted(), corpus.total_observations());
}

TEST_F(PassiveCollectorTest, ShardedCollectionIsBitIdenticalToSerial) {
  // The tentpole guarantee: threads=N merges to the same corpus as the
  // exact legacy threads=1 path — same size, total_observations, and
  // per-record fields — because per-device streams are order-independent
  // and Corpus aggregates are commutative.
  CollectorConfig serial{false, 0.01, 3};
  serial.threads = 1;
  const auto base = collect(*world_, serial, 0, 5 * util::kDay);
  for (const unsigned threads : {2u, 4u, 7u}) {
    CollectorConfig sharded_config = serial;
    sharded_config.threads = threads;
    const auto sharded =
        collect(*world_, sharded_config, 0, 5 * util::kDay);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_identical_corpora(base, sharded);
  }
}

TEST_F(PassiveCollectorTest, ShardedCountersSumToSerialCounters) {
  netsim::DataPlane plane(*world_, {0.01, 1});
  netsim::PoolDns dns(*world_);
  CollectorConfig config{false, 0.01, 3};
  config.threads = 1;
  PassiveCollector serial(*world_, plane, dns, config);
  Corpus serial_corpus(1 << 12);
  serial.run(serial_corpus, 0, 4 * util::kDay);

  config.threads = 4;
  PassiveCollector sharded(*world_, plane, dns, config);
  Corpus sharded_corpus(1 << 12);
  sharded.run(sharded_corpus, 0, 4 * util::kDay);

  EXPECT_EQ(sharded.polls_attempted(), serial.polls_attempted());
  EXPECT_EQ(sharded.polls_answered(), serial.polls_answered());
}

TEST_F(PassiveCollectorTest, ShardedHookDeliveryIsSerializedAndComplete) {
  // Hooks under threads>1 are serialized by the collector, so an
  // unsynchronized hook body must still see every observation exactly
  // once (the count matches the corpus total).
  CollectorConfig config{false, 0.0, 3};
  config.threads = 4;
  std::uint64_t hook_calls = 0;
  std::set<std::uint8_t> vantages;
  const auto corpus = collect(
      *world_, config, 0, 2 * util::kDay,
      [&](const ntp::Observation& obs, const net::Ipv6Address& vantage) {
        ++hook_calls;
        vantages.insert(obs.vantage);
        EXPECT_FALSE(vantage.is_unspecified());
      });
  EXPECT_EQ(hook_calls, corpus.total_observations());
  EXPECT_GT(vantages.size(), 10u);
}

TEST_F(PassiveCollectorTest, WireFidelityStaysSerialUnderThreadKnob) {
  // The wire path mutates the shared DataPlane per poll, so the threads
  // knob must not shard it; threads=8 and threads=1 run the same serial
  // code and produce identical corpora.
  CollectorConfig one{true, 0.0, 3};
  one.threads = 1;
  CollectorConfig eight = one;
  eight.threads = 8;
  const auto a = collect(*world_, one, 0, util::kDay);
  const auto b = collect(*world_, eight, 0, util::kDay);
  expect_identical_corpora(a, b);
}

TEST_F(PassiveCollectorTest, DeterministicAcrossRuns) {
  const auto a = collect(*world_, {false, 0.01, 3}, 0, 2 * util::kDay);
  const auto b = collect(*world_, {false, 0.01, 3}, 0, 2 * util::kDay);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.total_observations(), b.total_observations());
}

TEST_F(PassiveCollectorTest, WindowBoundsRespected) {
  const auto corpus =
      collect(*world_, {false, 0.0, 3}, util::kDay, 2 * util::kDay);
  corpus.for_each([&](const AddressRecord& rec) {
    EXPECT_GE(rec.first_seen, static_cast<std::uint32_t>(util::kDay));
    EXPECT_LT(rec.last_seen, static_cast<std::uint32_t>(2 * util::kDay));
  });
}

// The distributed-collection partition property: S workers recording
// disjoint vantage subsets (v % S), with only subset 0 counting
// unassigned polls, merge bit-identically to one unfiltered run — every
// record field, every counter.
TEST_F(PassiveCollectorTest, VantageSubsetPartitionReassembles) {
  CollectorConfig base;
  base.loss_rate = 0.01;
  base.retry_limit = 2;
  const util::SimTime start = 0;
  const util::SimTime end = 5 * util::kDay;

  netsim::DataPlane ref_plane(*world_, {base.loss_rate, 1});
  netsim::PoolDns ref_dns(*world_);
  PassiveCollector reference_collector(*world_, ref_plane, ref_dns, base);
  Corpus reference(1 << 12);
  reference_collector.run(reference, start, end);

  const std::size_t vantage_count = world_->vantages().size();
  for (const std::uint32_t subset_count : {2u, 3u}) {
    Corpus merged(1 << 12);
    std::uint64_t polls = 0, answered = 0;
    for (std::uint32_t s = 0; s < subset_count; ++s) {
      CollectorConfig cfg = base;
      cfg.vantage_filter.assign(vantage_count, false);
      for (std::size_t v = 0; v < vantage_count; ++v) {
        cfg.vantage_filter[v] = (v % subset_count == s);
      }
      cfg.count_unassigned = (s == 0);
      netsim::DataPlane plane(*world_, {cfg.loss_rate, 1});
      netsim::PoolDns dns(*world_);
      PassiveCollector collector(*world_, plane, dns, cfg);
      Corpus part(1 << 12);
      collector.run(part, start, end);
      merged.merge(part);
      polls += collector.polls_attempted();
      answered += collector.polls_answered();
    }
    expect_identical_corpora(merged, reference);
    EXPECT_EQ(polls, reference_collector.polls_attempted()) << subset_count;
    EXPECT_EQ(answered, reference_collector.polls_answered()) << subset_count;
  }
}

}  // namespace
}  // namespace v6::hitlist
