#include "net/entropy.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace v6::net {
namespace {

TEST(IidEntropy, AllZeroIsZero) { EXPECT_DOUBLE_EQ(iid_entropy(0ULL), 0.0); }

TEST(IidEntropy, AllSameNonZeroNibbleIsZero) {
  EXPECT_DOUBLE_EQ(iid_entropy(0xffffffffffffffffULL), 0.0);
  EXPECT_DOUBLE_EQ(iid_entropy(0x7777777777777777ULL), 0.0);
}

TEST(IidEntropy, PaperExampleAllDistinctIsOne) {
  // The paper's own example: IID 0123:4567:89ab:cdef has entropy 1.0.
  EXPECT_DOUBLE_EQ(iid_entropy(0x0123456789abcdefULL), 1.0);
}

TEST(IidEntropy, TwoSymbolsHalfEach) {
  // 8 zeros and 8 ones -> H = 1 bit, normalized by 4 -> 0.25.
  EXPECT_DOUBLE_EQ(iid_entropy(0x1111111100000000ULL), 0.25);
}

TEST(IidEntropy, LowByteAddressesAreLowEntropy) {
  EXPECT_LT(iid_entropy(0x1ULL), 0.25);
  EXPECT_LT(iid_entropy(0x2ULL), 0.25);
  EXPECT_LT(iid_entropy(0x100ULL), 0.25);
}

TEST(IidEntropy, AddressOverloadMatchesIidOverload) {
  const auto a = Ipv6Address::from_u64(0xdeadbeefcafef00dULL,
                                       0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(iid_entropy(a), iid_entropy(a.iid()));
}

TEST(IidEntropy, RandomIidsClusterNearPointEightFive) {
  // Uniform random 16-nibble strings have expected normalized entropy
  // ~0.80 (nibble collisions keep it well below 1.0) — this is why the
  // paper's client-heavy corpus has median ~0.8.
  util::Rng rng(7);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += iid_entropy(rng.next());
  const double mean = sum / kDraws;
  EXPECT_GT(mean, 0.78);
  EXPECT_LT(mean, 0.83);
}

TEST(EntropyBand, CutoffsMatchPaper) {
  EXPECT_EQ(entropy_band(0.0), EntropyBand::kLow);
  EXPECT_EQ(entropy_band(0.2499), EntropyBand::kLow);
  EXPECT_EQ(entropy_band(0.25), EntropyBand::kMedium);
  EXPECT_EQ(entropy_band(0.7499), EntropyBand::kMedium);
  EXPECT_EQ(entropy_band(0.75), EntropyBand::kHigh);
  EXPECT_EQ(entropy_band(1.0), EntropyBand::kHigh);
}

TEST(EntropyBand, Names) {
  EXPECT_STREQ(to_string(EntropyBand::kLow), "low");
  EXPECT_STREQ(to_string(EntropyBand::kMedium), "medium");
  EXPECT_STREQ(to_string(EntropyBand::kHigh), "high");
}

TEST(IidEntropy, RangeAlwaysNormalized) {
  util::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double h = iid_entropy(rng.next());
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
}

TEST(IidEntropy, PermutationInvariant) {
  // Entropy only depends on nibble frequencies, not positions.
  EXPECT_DOUBLE_EQ(iid_entropy(0x1122334455667788ULL),
                   iid_entropy(0x8877665544332211ULL));
}

}  // namespace
}  // namespace v6::net
