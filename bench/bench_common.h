// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper against
// a freshly simulated study. Scale is controlled by environment variables
// so the default `for b in build/bench/*; do $b; done` run finishes in
// minutes while still reproducing the paper's *shape*:
//   V6_BENCH_SITES  — customer sites in the world   (default 20000)
//   V6_BENCH_DAYS   — study duration in days        (default 219)
//   V6_BENCH_SEED   — world seed                    (default 2022)
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "core/study.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace v6::bench {

// The scaled-down study configuration shared by all benches.
core::StudyConfig bench_config();

// Prints the standard bench banner (scale, seed, stage timings).
void print_banner(const std::string& bench_name, const core::StudyConfig&
                      config);

// "paper vs measured" comparison table helper.
class Comparison {
 public:
  Comparison() : table_({"metric", "paper", "measured (scaled world)"}) {}

  void row(const std::string& metric, const std::string& paper,
           const std::string& measured) {
    table_.add_row({metric, paper, measured});
  }
  void print() { table_.print(std::cout); }

 private:
  util::TablePrinter table_;
};

// A BenchJson (bench_json.h) with the bench's world scale stamped in, so
// a trajectory chart can discard runs measured at a different scale.
// World-scaled benches start from this; scale-free microbenches construct
// BenchJson directly.
BenchJson scaled_bench_json(const std::string& bench_name);

// Runs fn() and prints its wall-clock seconds.
void timed(const std::string& label, const std::function<void()>& fn);

// Like timed(), and also returns the wall-clock seconds (for speedup
// ratios between two timed stages).
double timed_seconds(const std::string& label,
                     const std::function<void()>& fn);

// Renders a CDF as (x, F(x)) rows at `points` evenly spaced x values.
void print_cdf(const std::string& caption,
               const util::EmpiricalDistribution& distribution,
               std::size_t points = 21);

}  // namespace v6::bench
