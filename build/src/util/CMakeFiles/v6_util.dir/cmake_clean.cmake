file(REMOVE_RECURSE
  "CMakeFiles/v6_util.dir/rng.cc.o"
  "CMakeFiles/v6_util.dir/rng.cc.o.d"
  "CMakeFiles/v6_util.dir/sim_time.cc.o"
  "CMakeFiles/v6_util.dir/sim_time.cc.o.d"
  "CMakeFiles/v6_util.dir/stats.cc.o"
  "CMakeFiles/v6_util.dir/stats.cc.o.d"
  "CMakeFiles/v6_util.dir/strings.cc.o"
  "CMakeFiles/v6_util.dir/strings.cc.o.d"
  "CMakeFiles/v6_util.dir/table.cc.o"
  "CMakeFiles/v6_util.dir/table.cc.o.d"
  "libv6_util.a"
  "libv6_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
