#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace v6::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != ',' && c != '%' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}
}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      const bool right = align_numeric && looks_numeric(cells[c]);
      if (c) out << "  ";
      if (right) out << std::string(pad, ' ');
      out << cells[c];
      if (!right && c + 1 < cells.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit(headers_, false);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c ? 2 : 0);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> headers)
    : out_(out), columns_(headers.size()) {
  row(headers);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void print_series(std::ostream& out, const std::string& caption,
                  const std::vector<std::string>& column_names,
                  const std::vector<std::vector<double>>& columns) {
  out << "# " << caption << '\n';
  for (std::size_t i = 0; i < column_names.size(); ++i) {
    if (i) out << ',';
    out << column_names[i];
  }
  out << '\n';
  std::size_t rows = 0;
  for (const auto& col : columns) rows = std::max(rows, col.size());
  char buf[64];
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ',';
      if (r < columns[c].size()) {
        std::snprintf(buf, sizeof buf, "%.6g", columns[c][r]);
        out << buf;
      }
    }
    out << '\n';
  }
}

}  // namespace v6::util
