// Geographic coordinates and great-circle distance.
#pragma once

#include <compare>

namespace v6::geo {

struct LatLon {
  double latitude = 0.0;
  double longitude = 0.0;

  friend auto operator<=>(const LatLon&, const LatLon&) = default;
};

// Haversine great-circle distance in kilometers.
double distance_km(const LatLon& a, const LatLon& b) noexcept;

}  // namespace v6::geo
