// Snapshot exposition: Prometheus text format and JSON.
//
// render() turns one Snapshot into a byte-deterministic string (samples
// arrive pre-sorted from Registry::snapshot()):
//   * kPrometheus — the text exposition format scrapers ingest: # HELP /
//     # TYPE headers, `name{label="v"} value` samples, histograms as
//     cumulative `_bucket{le=...}` + `_sum` + `_count`. Spans have no
//     Prometheus representation and are omitted.
//   * kJson — the full snapshot including spans, for dashboards and jq.
//
// lint_prometheus() is the promtool-style validator: a hand-rolled,
// dependency-free line checker used by tests and the CLI's lint-metrics
// subcommand so CI can assert that what we emit actually parses.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "obs/snapshot.h"

namespace v6::obs {

namespace detail {

// Shared rendering primitives, also used by the timeline/trace exporters
// so every exposition path escapes and formats identically.

// Deterministic number text: integral doubles print as integers,
// everything else as %.10g. Locale-independent.
std::string format_double(double v);

// Prometheus label-value escaping: `\` → `\\`, `"` → `\"`, newline → `\n`.
void append_escaped_label_value(std::string& out, std::string_view v);

// `{a="x",b="y"}` (empty string when no labels). `extra` appends one more
// pair (the histogram `le` label) without copying the label set.
std::string label_block(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {});

// JSON string literal including the surrounding quotes, control chars as
// \uXXXX.
void append_json_string(std::string& out, std::string_view s);

}  // namespace detail

enum class ExpositionFormat : std::uint8_t { kPrometheus, kJson };

// "prom"/"prometheus"/"text" or "json" (case-sensitive); nullopt otherwise.
std::optional<ExpositionFormat> parse_format(std::string_view name);

// File suffix convention for a format ("prom" / "json").
std::string_view format_suffix(ExpositionFormat format);

std::string render(const Snapshot& snapshot, ExpositionFormat format);

// Receives rendered snapshots (e.g. writes them to a file, a socket, a
// test vector). Study's --metrics-out plumbing is one of these.
using SnapshotSink =
    std::function<void(const Snapshot& snapshot, std::string_view rendered)>;

// Validates Prometheus text exposition: every line must be a well-formed
// comment (# HELP name text / # TYPE name {counter,gauge,histogram,
// summary,untyped}), a sample (name[{labels}] value [timestamp]) with a
// legal metric name, label syntax, and numeric value, and TYPE lines must
// precede their family's samples and appear at most once. Label values
// must use the exposition escapes exactly (`\\`, `\"`, `\n` — anything
// else after a backslash is rejected), and two samples with the same
// (name, label set) — labels compared as a set — are a duplicate series.
// Returns nullopt on success, else "line N: <problem>".
std::optional<std::string> lint_prometheus(std::string_view text);

}  // namespace v6::obs
