# Distributed-collection identity gate, run as a CTest job through the
# real binary: the CLI collects the same study single-process, then
# through a simulated 4-worker coordinator/worker cluster with exactly 2
# workers killed mid-run — and the two saved corpus snapshots must be
# byte-identical. The V6DIST01 frame log the cluster produced must pass
# the protocol linter. Expects -DCLI=<path to v6pool_cli> and
# -DWORK=<scratch dir>.
if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "dist_identity.cmake needs -DCLI= and -DWORK=")
endif()

file(MAKE_DIRECTORY "${WORK}")
set(common study --sites 300 --days 10 --threads 2 --seed 53 --collect-only)

execute_process(
  COMMAND ${CLI} ${common} --save-corpus ${WORK}/single.corpus
  RESULT_VARIABLE single_rc OUTPUT_QUIET)
if(NOT single_rc EQUAL 0)
  message(FATAL_ERROR "single-process study failed (rc=${single_rc})")
endif()

execute_process(
  COMMAND ${CLI} ${common} --dist-workers 4 --dist-kills 2
          --dist-chunk-days 2 --save-corpus ${WORK}/dist.corpus
          --frames-out ${WORK}/frames.log
  RESULT_VARIABLE dist_rc OUTPUT_QUIET)
if(NOT dist_rc EQUAL 0)
  message(FATAL_ERROR "distributed study failed (rc=${dist_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/single.corpus ${WORK}/dist.corpus
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
          "snapshots differ between single-process and 4-worker/2-kill runs")
endif()

execute_process(
  COMMAND ${CLI} lint-dist ${WORK}/frames.log
  RESULT_VARIABLE lint_rc OUTPUT_QUIET)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "frame log failed lint-dist (rc=${lint_rc})")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS
        "dist identity: snapshots byte-identical under 4 workers + 2 kills")
