#include "analysis/dataset_compare.h"

#include <array>
#include <unordered_set>

namespace v6::analysis {

DatasetSummary summarize_dataset(const std::string& name,
                                 const hitlist::Corpus& corpus,
                                 const sim::World& world,
                                 const hitlist::Corpus* base) {
  DatasetSummary summary;
  summary.name = name;
  summary.addresses = corpus.size();

  std::unordered_set<std::uint32_t> asns, common_asns;
  std::unordered_set<std::uint64_t> s48s, common_s48s;

  // Base-dataset coverage for the "common" columns.
  std::unordered_set<std::uint32_t> base_asns;
  std::unordered_set<std::uint64_t> base_s48s;
  if (base != nullptr) {
    base->for_each([&](const hitlist::AddressRecord& rec) {
      if (const auto as_index = world.as_index_of(rec.address)) {
        base_asns.insert(*as_index);
      }
      base_s48s.insert(rec.address.hi64() >> 16);
    });
  }

  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    const std::uint64_t s48 = rec.address.hi64() >> 16;
    s48s.insert(s48);
    if (const auto as_index = world.as_index_of(rec.address)) {
      asns.insert(*as_index);
      if (base != nullptr && base_asns.contains(*as_index)) {
        common_asns.insert(*as_index);
      }
    }
    if (base != nullptr) {
      if (base->find(rec.address) != nullptr) ++summary.common_addresses;
      if (base_s48s.contains(s48)) common_s48s.insert(s48);
    }
  });

  summary.asns = asns.size();
  summary.slash48s = s48s.size();
  summary.common_asns = common_asns.size();
  summary.common_slash48s = common_s48s.size();
  summary.addrs_per_slash48 =
      summary.slash48s == 0
          ? 0.0
          : static_cast<double>(summary.addresses) /
                static_cast<double>(summary.slash48s);
  return summary;
}

std::vector<std::pair<sim::AsType, double>> as_type_fractions(
    const hitlist::Corpus& corpus, const sim::World& world) {
  std::array<std::uint64_t, 5> counts{};
  std::uint64_t total = 0;
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    const auto as_index = world.as_index_of(rec.address);
    if (!as_index) return;
    ++counts[static_cast<std::size_t>(world.ases()[*as_index].type)];
    ++total;
  });
  std::vector<std::pair<sim::AsType, double>> out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out.emplace_back(static_cast<sim::AsType>(i),
                     total == 0 ? 0.0
                                : static_cast<double>(counts[i]) /
                                      static_cast<double>(total));
  }
  return out;
}

}  // namespace v6::analysis
