#include "scan/target_gen.h"

#include "util/rng.h"

namespace v6::scan {

std::vector<net::Ipv6Address> routed_slash48_targets(const sim::World& world,
                                                     double fraction,
                                                     std::uint64_t seed) {
  std::vector<net::Ipv6Address> targets;
  const auto threshold = static_cast<std::uint64_t>(
      fraction >= 1.0 ? ~std::uint64_t{0}
                      : fraction * 0x1p64);
  for (const auto& as : world.ases()) {
    // The /32 has 2^16 constituent /48s (bits 31..16 of the hi64's low
    // half select the /48).
    for (std::uint64_t s48 = 0; s48 < 0x10000; ++s48) {
      if (fraction < 1.0 &&
          util::mix64(seed ^ as.prefix_hi ^ s48) >= threshold) {
        continue;
      }
      const std::uint64_t hi = as.prefix_hi | (s48 << 16);
      targets.push_back(net::Ipv6Address::from_u64(hi, 1));
    }
  }
  return targets;
}

std::vector<net::Ipv6Address> low_iid_candidates(
    std::span<const net::Ipv6Prefix> active_slash64s) {
  static constexpr std::uint64_t kIids[] = {0, 1, 2, 0xa, 0x100};
  std::vector<net::Ipv6Address> out;
  out.reserve(active_slash64s.size() * std::size(kIids));
  for (const auto& p : active_slash64s) {
    const std::uint64_t hi = p.address().hi64();
    for (const auto iid : kIids) {
      out.push_back(net::Ipv6Address::from_u64(hi, iid));
    }
  }
  return out;
}

std::vector<net::Ipv6Address> subnet_sweep_candidates(
    std::span<const net::Ipv6Prefix> active_slash48s, std::uint32_t subnets) {
  std::vector<net::Ipv6Address> out;
  out.reserve(active_slash48s.size() * subnets);
  for (const auto& p : active_slash48s) {
    for (std::uint32_t s = 0; s < subnets; ++s) {
      out.push_back(
          net::Ipv6Address::from_u64(p.address().hi64() | s, 1));
    }
  }
  return out;
}

}  // namespace v6::scan
