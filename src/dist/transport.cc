#include "dist/transport.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace v6::dist {

namespace fs = std::filesystem;

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("dist: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("dist: write failed for " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("dist: rename to " + path +
                             " failed: " + ec.message());
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dist: cannot open " + path);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

Mailbox::Mailbox(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw std::runtime_error("dist: cannot create mailbox " + directory_ +
                             ": " + ec.message());
  }
}

void Mailbox::post(const Frame& frame) {
  // f-<sender hex8>-<seq hex16>.frame: lexicographic == per-sender FIFO.
  char name[40];
  std::snprintf(name, sizeof(name), "f-%08x-%016llx.frame", frame.sender,
                static_cast<unsigned long long>(frame.seq));
  write_file_atomic(directory_ + "/" + name, encode_frame(frame));
}

std::vector<Frame> Mailbox::drain() {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Skip in-flight posts; only renamed-complete frames are real.
    if (name.size() < 6 || name.substr(name.size() - 6) != ".frame") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  std::vector<Frame> frames;
  frames.reserve(names.size());
  for (const std::string& name : names) {
    const std::string path = directory_ + "/" + name;
    frames.push_back(decode_frame(read_file(path)));
    std::error_code ec;
    fs::remove(path, ec);  // best-effort; a re-read is idempotent enough
  }
  return frames;
}

}  // namespace v6::dist
