#include "analysis/outage.h"

#include <algorithm>

namespace v6::analysis {

namespace {

std::uint64_t bucket_key(std::uint32_t as_index, std::int64_t day) {
  return (static_cast<std::uint64_t>(as_index) << 24) |
         (static_cast<std::uint64_t>(day) & 0xffffff);
}

}  // namespace

void OutageMonitor::record(const net::Ipv6Address& client, util::SimTime t) {
  const auto as_index = world_->as_index_of(client);
  if (!as_index) return;
  const std::int64_t day = t / util::kDay;
  if (day < 0) return;
  ++buckets_[bucket_key(*as_index, day)];
}

std::vector<std::uint64_t> OutageMonitor::daily_series(
    std::uint32_t as_index, std::int64_t window_days) const {
  std::vector<std::uint64_t> series(
      static_cast<std::size_t>(std::max<std::int64_t>(window_days, 0)), 0);
  for (std::int64_t day = 0; day < window_days; ++day) {
    const auto it = buckets_.find(bucket_key(as_index, day));
    if (it != buckets_.end()) series[static_cast<std::size_t>(day)] = it->second;
  }
  return series;
}

std::vector<DetectedOutage> OutageMonitor::detect(
    std::int64_t window_days) const {
  std::vector<DetectedOutage> outages;
  for (std::uint32_t as_index = 0; as_index < world_->ases().size();
       ++as_index) {
    const auto series = daily_series(as_index, window_days);
    if (series.empty()) continue;

    // Baseline: the AS's own median daily volume.
    std::vector<std::uint64_t> sorted = series;
    std::sort(sorted.begin(), sorted.end());
    const std::uint64_t median = sorted[sorted.size() / 2];
    if (median < config_.min_daily_volume) continue;

    const double threshold =
        config_.dark_fraction * static_cast<double>(median);
    // An outage is a dark run *bracketed by normal days*: a network that
    // only ramps up mid-study (new deployment) or dies at the window edge
    // is not a confirmed outage, just like production detectors require
    // an up -> down -> up pattern.
    int run = 0;
    bool was_up_before_run = false;
    for (std::int64_t day = 0; day <= window_days; ++day) {
      const bool dark =
          day < window_days &&
          static_cast<double>(series[static_cast<std::size_t>(day)]) <
              threshold;
      if (dark) {
        ++run;
        continue;
      }
      if (run >= config_.min_dark_days && was_up_before_run &&
          day < window_days) {
        DetectedOutage outage;
        outage.as_index = as_index;
        outage.asn = world_->ases()[as_index].asn;
        outage.first_day = day - run;
        outage.last_day = day - 1;
        outages.push_back(outage);
      }
      run = 0;
      was_up_before_run = true;
    }
  }
  return outages;
}

}  // namespace v6::analysis
