// File-mailbox transport for the real multi-process mode.
//
// The coordinator and each worker exchange V6DIST01 frames through
// per-recipient mailbox directories under one shared run directory:
//
//   <dir>/to-coordinator/        frames addressed to the coordinator
//   <dir>/to-worker-<id>/        frames addressed to worker <id>
//   <dir>/ckpt/                  durable V6CKPT01 artifacts
//   <dir>/frames.log             concatenated frame log (lint-dist input)
//
// A post is one frame in one file, written to a ".tmp" name and renamed
// into place — the same atomicity discipline as checkpoint files — so a
// reader never observes a half-written frame (rename is atomic on POSIX;
// `kill -9` mid-post leaves only a stale .tmp that drains ignore). File
// names embed (sender, seq) zero-padded so a lexicographic directory scan
// yields per-sender FIFO order. A shared filesystem is the only
// dependency, which is exactly what the CI smoke job (and a rack of lab
// machines with NFS) has.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dist/protocol.h"

namespace v6::dist {

// Atomic whole-file write (tmp + rename). Throws std::runtime_error.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

// Reads a whole file. Throws std::runtime_error when it cannot be opened.
std::vector<std::uint8_t> read_file(const std::string& path);

// One mailbox directory: post() for senders, drain() for the recipient.
class Mailbox {
 public:
  // Creates the directory (and parents) if needed.
  explicit Mailbox(std::string directory);

  const std::string& directory() const noexcept { return directory_; }

  // Atomically delivers one frame. `seq` is assigned from the frame.
  void post(const Frame& frame);

  // Removes and decodes every complete frame currently in the mailbox,
  // in lexicographic (per-sender FIFO) order. Corrupt frames throw
  // std::runtime_error — a mailbox is a trusted-transport boundary, and
  // garbage means the run directory is damaged, not that we should limp.
  std::vector<Frame> drain();

 private:
  std::string directory_;
};

}  // namespace v6::dist
