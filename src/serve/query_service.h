// QueryService: hitlist-as-a-service over a live corpus.
//
// The read-mostly snapshot pattern of Jool's pool6.c (SNIPPETS.md) in
// modern C++: the collector publishes an immutable Snapshot at each
// sim-time merge barrier by swapping a shared_ptr; readers copy the
// pointer and answer queries against a frozen epoch while ingest keeps
// running. The pointer swap/copy is guarded by a mutex held only for the
// refcount bump — readers pin an epoch once per batch and then query the
// Snapshot itself lock-free — and publication never waits for readers: a
// reader that grabbed epoch N keeps it alive (shared_ptr refcount is the
// grace period) while epoch N+1 serves new pins. (A lock-free
// std::atomic<shared_ptr> would express the same shape, but libstdc++
// 12's lock-bit implementation pairs its protected-pointer accesses with
// a relaxed unlock, which ThreadSanitizer flags — the mutex keeps the
// reader/ingest race test in the TSan CI job clean at identical cost per
// pinned batch.)
//
// Determinism contract: every answer is a pure function of the snapshot
// it was asked of. Snapshots are built at merge barriers from
// canonicalized content, so for a given epoch the answers are
// bit-identical at any reader thread count and any ingest thread count
// (tests and bench_query_serving assert this).
//
// Memory bound: the service retains at most `retain_epochs` snapshots
// (a deque under the publish mutex); older epochs die as soon as the
// last outside reader drops its pointer. Worst-case footprint is
// retain_epochs * Snapshot::memory_bytes() plus whatever readers pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "serve/snapshot.h"
#include "util/sim_time.h"

namespace v6::serve {

// What Study::run(RunOptions::serve) turns on.
struct ServeConfig {
  bool enabled = false;
  // Sim-time spacing of interior publication barriers inside the
  // collection window (the collector joins all shards there, exactly like
  // the checkpoint grid). 0 publishes only the final end-of-collection
  // epoch. Distributed stage 1 always publishes only the final epoch.
  util::SimDuration epoch_interval = 0;
  // Retention bound on snapshots the service itself keeps alive.
  std::size_t retain_epochs = 4;
};

enum class QueryKind : std::uint8_t {
  kPoint = 0,
  kDensity48 = 1,
  kEntropy64 = 2,
  kOuiRisk = 3,
};
inline constexpr std::size_t kQueryKinds = 4;

const char* to_string(QueryKind kind) noexcept;

class QueryService {
 public:
  explicit QueryService(std::size_t retain_epochs = 4);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Registers the serve counters/gauges. Call before readers start (the
  // handles are plain members); a null registry keeps them no-ops.
  void set_metrics(obs::Registry* registry);
  void set_retain_epochs(std::size_t retain_epochs);

  // Builds the next epoch's snapshot from `src` (ascending record
  // stream; see Snapshot::build) and publishes it. Publisher-side only —
  // call from one thread at a merge barrier. Returns the published
  // snapshot.
  std::shared_ptr<const Snapshot> publish(const analysis::ScanSource& src,
                                          util::SimTime as_of);

  // The latest published epoch (null before the first publish). Pins the
  // epoch: the mutex is held for one shared_ptr copy; batch queries
  // against the returned Snapshot directly.
  std::shared_ptr<const Snapshot> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // The retained epochs, ascending. Readers holding older shared_ptrs
  // keep those epochs alive beyond this window; the service itself only
  // pins the last retain_epochs.
  std::vector<std::shared_ptr<const Snapshot>> retained() const;

  std::uint64_t epochs_published() const noexcept {
    return epoch_counter_.load(std::memory_order_relaxed);
  }

  // --- Counted convenience queries against the current epoch -----------
  // Each loads current() once; a null current answers "unknown"/zero.
  // Readers pinning one epoch across a batch should query the Snapshot
  // directly and tally with count_queries(). Each observes its wall-clock
  // duration into v6_serve_latency_us{kind=...} — real elapsed time, so
  // (like the analysis stage wall_us histograms) those samples sit
  // explicitly OUTSIDE the determinism gates; everything else the serve
  // layer exports stays bit-identical.

  std::optional<hitlist::AddressRecord> point(
      const net::Ipv6Address& address) const;
  std::uint64_t slash48_density(const net::Ipv6Address& address) const;
  Slash64Summary slash64_entropy(const net::Ipv6Address& address) const;
  OuiRisk oui_risk(net::Oui oui) const;

  // Bulk query accounting for epoch-pinned readers (wait-free striped
  // counter increments; see obs/metrics.h).
  void count_queries(QueryKind kind, std::uint64_t n = 1) const noexcept {
    metric_queries_[static_cast<std::size_t>(kind)].inc(n);
  }

 private:
  mutable std::mutex mu_;  // guards current_, retained_, retain_epochs_
  std::shared_ptr<const Snapshot> current_;
  std::vector<std::shared_ptr<const Snapshot>> retained_;
  std::size_t retain_epochs_;
  std::atomic<std::uint64_t> epoch_counter_{0};
  obs::Counter metric_queries_[kQueryKinds];
  obs::Histogram metric_latency_[kQueryKinds];
  obs::Counter metric_epochs_;
  obs::Gauge metric_epoch_;
  obs::Gauge metric_records_;
};

// Latency bucket edges for the serve path, in microseconds: point lookups
// answer in well under a microsecond, so the ladder starts at 0.25µs and
// climbs ~4x to 100ms (the default stage-duration ladder starts at 100µs —
// far too coarse here).
std::vector<double> serve_latency_buckets_us();

}  // namespace v6::serve
