// Outage detection from passive NTP time series (the abstract's "benefits"
// list, as a runnable program).
//
// Injects two AS-wide outages into the world, runs collection with an
// OutageMonitor hooked into the observation stream, and shows the detector
// recovering the injected windows from nothing but per-AS daily volumes —
// no probing involved.
#include <cstdio>

#include "analysis/outage.h"
#include "analysis/rotation.h"
#include "core/study.h"
#include "util/strings.h"

int main() {
  using namespace v6;

  core::StudyConfig config;
  config.world.seed = 21;
  config.world.total_sites = 3000;
  config.world.study_duration = 60 * util::kDay;
  config.world.outage_count = 2;
  config.world.outage_duration = 4 * util::kDay;
  config.pool_capture_share = 1.0;  // dense series for a short demo window

  core::Study study(config);
  analysis::OutageMonitor monitor(study.world());

  // Wire the monitor into collection by rerunning the collector with a
  // hook (Study::collect has no hook; use the collector directly).
  netsim::PoolDns dns(study.world(), 0.25, 1.0);
  hitlist::PassiveCollector collector(study.world(), study.plane(), dns,
                                      config.collector);
  hitlist::Corpus corpus(1 << 16);
  collector.run(corpus, 0, config.world.study_duration,
                [&monitor](const ntp::Observation& obs,
                           const net::Ipv6Address&) {
                  monitor.record(obs.client, obs.time);
                });
  std::printf("collected %s unique addresses\n\n",
              util::with_commas(corpus.size()).c_str());

  std::printf("injected outages (ground truth):\n");
  for (std::uint32_t ai = 0; ai < study.world().ases().size(); ++ai) {
    const auto& as = study.world().ases()[ai];
    if (as.outage_duration == 0) continue;
    std::printf("  AS%-6u %-28s days %ld-%ld\n", as.asn, as.name.c_str(),
                static_cast<long>(as.outage_start / util::kDay),
                static_cast<long>(
                    (as.outage_start + as.outage_duration - 1) / util::kDay));
  }

  const auto detected =
      monitor.detect(config.world.study_duration / util::kDay);
  std::printf("\ndetected from the observation series alone:\n");
  for (const auto& outage : detected) {
    std::printf("  AS%-6u %-28s days %ld-%ld\n", outage.asn,
                study.world().ases()[outage.as_index].name.c_str(),
                static_cast<long>(outage.first_day),
                static_cast<long>(outage.last_day));
    const auto series = monitor.daily_series(
        outage.as_index, config.world.study_duration / util::kDay);
    std::printf("    series: ");
    for (std::size_t day = 0; day < series.size(); ++day) {
      std::printf("%c", series[day] < 5 ? '_' : (series[day] < 50 ? '.' : '#'));
    }
    std::printf("\n");
  }
  if (detected.empty()) std::printf("  (none)\n");
  return 0;
}
