// Figure 7 — exemplar tracking timelines: for each §5.2 class, the richest
// MAC's journey as (day, /64, ASN, country) rows. The paper's four panels
// show prefix renumbering within one AS, worldwide MAC reuse, a device
// changing providers, and a mobile user moving between networks.
#include "analysis/eui64_tracking.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 7: exemplar EUI-64 timelines", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& r = study.results();

  analysis::Eui64Tracker tracker(r.ntp, study.world());
  const auto exemplars = tracker.exemplars();
  if (exemplars.empty()) {
    std::printf("no trackable EUI-64 devices at this scale\n");
    return 0;
  }

  for (const auto& [cls, mac] : exemplars) {
    if (cls == analysis::TrackingClass::kMostlyStatic) continue;  // dull
    const auto timeline = tracker.timeline(mac);
    std::printf("\n-- Fig 7 panel: %s -- MAC %s, %zu sightings --\n",
                to_string(cls), mac.to_string().c_str(), timeline.size());
    std::printf("day,slash64,asn,country\n");
    // Cap the dump; the shape is visible in a few dozen rows.
    const std::size_t step = std::max<std::size_t>(1, timeline.size() / 40);
    for (std::size_t i = 0; i < timeline.size(); i += step) {
      const auto& point = timeline[i];
      std::printf("%u,%s,%u,%s\n",
                  point.first_seen / static_cast<std::uint32_t>(util::kDay),
                  net::Ipv6Address::from_u64(point.slash64_hi, 0)
                      .to_string()
                      .c_str(),
                  point.asn, point.country.to_string().c_str());
    }
  }

  std::printf("\n");
  bench::Comparison comparison;
  for (const auto& [cls, mac] : exemplars) {
    const auto timeline = tracker.timeline(mac);
    std::unordered_set<std::uint64_t> slash64s;
    std::unordered_set<std::uint32_t> asns;
    std::unordered_set<std::uint16_t> countries;
    for (const auto& point : timeline) {
      slash64s.insert(point.slash64_hi);
      asns.insert(point.asn);
      countries.insert(point.country.value());
    }
    comparison.row(
        std::string("exemplar ") + to_string(cls),
        "distinct /64s, ASes, countries",
        std::to_string(slash64s.size()) + " /64s, " +
            std::to_string(asns.size()) + " ASes, " +
            std::to_string(countries.size()) + " countries");
  }
  comparison.print();
  return 0;
}
