// The simulated data plane: delivers ICMPv6 probes and UDP datagrams
// between addresses, consulting the world for ownership, firewalls, and
// aliases, and the topology for hop-limited (traceroute) behaviour.
//
// Probes travel as real wire bytes: an echo() call serializes an ICMPv6
// Echo Request, the "destination stack" decodes and validates it (checksum
// included), and the reply takes the same path back. A configurable loss
// rate models the real Internet's flakiness; scanners must tolerate it.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "netsim/fault_schedule.h"
#include "netsim/topology.h"
#include "obs/metrics.h"
#include "proto/icmpv6.h"
#include "sim/world.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::netsim {

struct DataPlaneConfig {
  // Probability any single datagram is dropped in transit.
  double loss_rate = 0.01;
  std::uint64_t seed = 7;
  // Per-router ICMPv6 error generation budget per simulated second
  // (control-plane policing): Time Exceeded messages beyond it are
  // silently dropped. 0 disables the limit. Yarrp's randomized probe
  // order exists precisely to spread load under such budgets.
  std::uint32_t router_icmp_rate_limit = 0;
  // Optional metrics sink (not owned; must outlive the plane). Appended
  // last so existing positional initializers stay valid.
  obs::Registry* metrics = nullptr;
};

// Outcome of an ICMPv6 probe.
struct ProbeResult {
  enum class Kind : std::uint8_t {
    kEchoReply,     // destination answered
    kTimeExceeded,  // a router on the path answered (hop-limited probe)
    kTimeout,       // silence: filtered, dead, lost, or unrouted
  };
  Kind kind = Kind::kTimeout;
  // Who answered (valid unless kTimeout).
  net::Ipv6Address responder;
  // Echoed sequence number (kEchoReply only).
  std::uint16_t sequence = 0;
};

// A UDP service bound to an address (e.g. a vantage NTP server). Returns
// the response payload, if any.
using UdpService = std::function<std::optional<std::vector<std::uint8_t>>(
    const net::Ipv6Address& src, std::uint16_t src_port,
    const std::vector<std::uint8_t>& payload, util::SimTime t)>;

class DataPlane {
 public:
  DataPlane(const sim::World& world, const DataPlaneConfig& config);

  // Sends an ICMPv6 Echo Request from src to dst with unlimited hops.
  ProbeResult echo(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                   std::uint16_t identifier, std::uint16_t sequence,
                   util::SimTime t);

  // Hop-limited echo (the Yarrp primitive): if the path is longer than
  // `hop_limit`, the router at that hop answers Time Exceeded.
  ProbeResult hop_limited_echo(const net::Ipv6Address& src,
                               const net::Ipv6Address& dst,
                               std::uint8_t hop_limit,
                               std::uint16_t identifier,
                               std::uint16_t sequence, util::SimTime t);

  // TCP SYN probe (the Hitlist's 80/443 scans). A listener answers
  // SYN-ACK; a reachable host without one answers RST (still proof of
  // liveness); firewalled/absent targets stay silent. Aliased prefixes
  // SYN-ACK everything.
  enum class SynOutcome : std::uint8_t { kSynAck, kRst, kTimeout };
  SynOutcome tcp_syn(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                     std::uint16_t dst_port, std::uint32_t sequence,
                     util::SimTime t);

  // Registers a UDP service on (address, port). Datagrams to anyone else
  // are resolved against the world (devices do not run open UDP services,
  // so they produce no answer).
  void bind_udp(const net::Ipv6Address& address, std::uint16_t port,
                UdpService service);

  // Sends a UDP payload; returns the response payload when the service
  // answers and nothing was lost.
  std::optional<std::vector<std::uint8_t>> send_udp(
      const net::Ipv6Address& src, std::uint16_t src_port,
      const net::Ipv6Address& dst, std::uint16_t dst_port,
      const std::vector<std::uint8_t>& payload, util::SimTime t);

  const Topology& topology() const noexcept { return topology_; }

  // Attaches a vantage fault schedule: UDP datagrams to a vantage that is
  // in outage (or unlucky during slow start) vanish before reaching the
  // bound service. The schedule is consulted, never mutated, so one plan
  // can be shared across planes and with PoolDns. Pass nullptr to detach.
  void set_faults(const FaultSchedule* faults) noexcept { faults_ = faults; }
  const FaultSchedule* faults() const noexcept { return faults_; }

  // Number of datagrams dropped so far (both directions).
  std::uint64_t drops() const noexcept { return drops_; }
  // Time Exceeded messages suppressed by router rate limiting.
  std::uint64_t rate_limited() const noexcept { return rate_limited_; }
  // Datagrams swallowed by injected vantage faults.
  std::uint64_t fault_drops() const noexcept { return fault_drops_; }

 private:
  bool lost();
  // Charges one ICMP error against `router`'s budget for second `t`.
  bool icmp_error_allowed(const net::Ipv6Address& router, util::SimTime t);

  const sim::World* world_;
  DataPlaneConfig config_;
  Topology topology_;
  util::Rng rng_;
  const FaultSchedule* faults_ = nullptr;
  std::uint64_t drops_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t fault_drops_ = 0;
  obs::Counter metric_drops_;
  obs::Counter metric_rate_limited_;
  obs::Counter metric_fault_drops_;
  // Per-second ICMP error budgets, keyed by second then router. Ordered so
  // stale seconds can be pruned as the newest-seen second advances; probes
  // may arrive out of chronological order (interleaved backscan intervals
  // revisit earlier seconds), and any second within the retention horizon
  // keeps an exact budget.
  util::SimTime budget_newest_ = std::numeric_limits<util::SimTime>::min();
  std::map<util::SimTime, std::unordered_map<std::uint64_t, std::uint32_t>>
      icmp_budget_;

  struct Endpoint {
    net::Ipv6Address address;
    std::uint16_t port;
    bool operator==(const Endpoint&) const = default;
  };
  struct EndpointHash {
    std::size_t operator()(const Endpoint& e) const noexcept {
      return net::Ipv6AddressHash{}(e.address) ^ e.port;
    }
  };
  std::unordered_map<Endpoint, UdpService, EndpointHash> services_;
};

}  // namespace v6::netsim
