#include "scan/zmap6.h"

#include "util/rng.h"

namespace v6::scan {

Zmap6Scanner::Zmap6Scanner(netsim::DataPlane& plane,
                           const Zmap6Config& config)
    : plane_(&plane), config_(config) {
  if (config_.metrics != nullptr) {
    metric_probes_ =
        config_.metrics->counter("v6_scan_probes_total", "Probes emitted",
                                 {{"scanner", "zmap6"}});
    metric_hits_ = config_.metrics->counter(
        "v6_scan_responsive_total", "Probes a live target answered",
        {{"scanner", "zmap6"}});
    metric_retries_ = config_.metrics->counter(
        "v6_scan_retries_total", "Re-probes of initially silent targets",
        {{"scanner", "zmap6"}});
  }
}

std::uint32_t Zmap6Scanner::validator(
    const net::Ipv6Address& target) const noexcept {
  return static_cast<std::uint32_t>(
      util::mix64(target.hi64() ^ util::mix64(target.lo64()) ^ config_.seed));
}

bool Zmap6Scanner::probe(const net::Ipv6Address& target, util::SimTime t) {
  const std::uint32_t v = validator(target);
  ++sent_;
  metric_probes_.inc();
  switch (config_.protocol) {
    case ProbeProtocol::kIcmpv6Echo: {
      const auto ident = static_cast<std::uint16_t>(v >> 16);
      const auto seq = static_cast<std::uint16_t>(v);
      const auto result =
          plane_->echo(config_.source, target, ident, seq, t);
      return result.kind == netsim::ProbeResult::Kind::kEchoReply &&
             result.responder == target && result.sequence == seq;
    }
    case ProbeProtocol::kTcpSyn80:
    case ProbeProtocol::kTcpSyn443: {
      const std::uint16_t port =
          config_.protocol == ProbeProtocol::kTcpSyn80 ? 80 : 443;
      // Any answer — SYN-ACK or RST — proves a live host, exactly how the
      // Hitlist counts TCP responsiveness.
      const auto outcome =
          plane_->tcp_syn(config_.source, target, port, v, t);
      return outcome != netsim::DataPlane::SynOutcome::kTimeout;
    }
  }
  return false;
}

std::vector<EchoRecord> Zmap6Scanner::scan(
    std::span<const net::Ipv6Address> targets, util::SimTime t0) {
  std::vector<EchoRecord> records;
  records.reserve(targets.size());
  const std::uint64_t rate = config_.probe_rate ? config_.probe_rate : 1;
  std::uint64_t i = 0;
  for (const auto& target : targets) {
    const util::SimTime t =
        t0 + static_cast<util::SimTime>(i++ / rate);
    records.push_back({target, probe(target, t)});
    if (records.back().responded) metric_hits_.inc();
  }
  for (std::uint32_t r = 0; r < config_.retries; ++r) {
    for (auto& rec : records) {
      if (rec.responded) continue;
      const util::SimTime t =
          t0 + static_cast<util::SimTime>(i++ / rate);
      metric_retries_.inc();
      rec.responded = probe(rec.target, t);
      if (rec.responded) metric_hits_.inc();
    }
  }
  return records;
}

}  // namespace v6::scan
