// Deterministic NTP client poll schedules.
//
// Every pool-using device polls on an irregular cadence around its
// configured interval, gated by how often it is online. The schedule is a
// pure function of the device seed, so collection passes can re-enumerate
// it identically — the reproducibility backbone of the whole study.
#pragma once

#include <cstdint>

#include "sim/device.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::ntp {

class ClientSchedule {
 public:
  ClientSchedule(const sim::Device& device, util::SimTime window_start,
                 util::SimTime window_end) noexcept;

  // Enumerates poll instants in [window_start, window_end); calls
  // `fn(SimTime)` for each. Polls while the device is offline are skipped
  // (the device simply doesn't ask for time).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!device_->ntp.uses_pool || device_->ntp.poll_interval <= 0) return;
    const double interval =
        static_cast<double>(device_->ntp.poll_interval);
    // Phase-shift the first poll so fleets don't thunder in lockstep.
    util::SimTime t =
        start_ + static_cast<util::SimTime>(
                     util::mix64(device_->seed ^ 0x9011) %
                     static_cast<std::uint64_t>(device_->ntp.poll_interval));
    for (std::uint64_t k = 0; t < end_; ++k) {
      const double online_roll =
          unit(util::mix64(device_->seed ^ 0x0411e ^ util::mix64(k)));
      if (online_roll < device_->ntp.online_fraction) fn(t);
      // Next poll: 0.5x..1.5x the nominal interval.
      const double jitter =
          0.5 + unit(util::mix64(device_->seed ^ 0x171e4 ^ util::mix64(k)));
      t += static_cast<util::SimDuration>(interval * jitter) + 1;
    }
  }

  // Number of polls that will fire (same enumeration, counted).
  std::uint64_t count() const noexcept;

 private:
  static double unit(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  const sim::Device* device_;
  util::SimTime start_;
  util::SimTime end_;
};

}  // namespace v6::ntp
