// The sim-time timeline: sampler windowing/diffing semantics, the JSONL
// and CSV exporters and their linters, the Chrome trace-event export —
// and the study-level determinism contract: WindowRecord sequences are
// bit-identical at any thread count, per-window deltas telescope to the
// end-of-run counter totals, and sampling changes no result byte.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/study.h"
#include "hitlist/corpus_io.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace v6::obs {
namespace {

// --- Sampler grid ----------------------------------------------------------

TEST(TimelineSampler, GridBoundaries) {
  Registry registry;
  TimelineSampler sampler(registry, 10, 100);
  EXPECT_EQ(sampler.interval(), 10);
  EXPECT_EQ(sampler.next_boundary(0), 100u);    // before the origin
  EXPECT_EQ(sampler.next_boundary(100), 110u);  // strictly after t
  EXPECT_EQ(sampler.next_boundary(104), 110u);
  EXPECT_EQ(sampler.next_boundary(110), 120u);
  EXPECT_TRUE(sampler.on_boundary(100));
  EXPECT_TRUE(sampler.on_boundary(130));
  EXPECT_FALSE(sampler.on_boundary(105));
  EXPECT_FALSE(sampler.on_boundary(90));  // off-grid: before the origin
}

TEST(TimelineSampler, ZeroIntervalIsClampedToOne) {
  Registry registry;
  TimelineSampler sampler(registry, 0, 0);
  EXPECT_EQ(sampler.interval(), 1);
  EXPECT_EQ(sampler.next_boundary(5), 6u);
}

TEST(TimelineSampler, WindowsAreGaplessAndClampedMonotone) {
  Registry registry;
  TimelineSampler sampler(registry, 10, 0);
  sampler.sample(10, "a");
  sampler.sample(30, "b");
  // A stage whose simulated window lies before the pipeline's position
  // (e.g. campaigns re-covering the collection window) closes a
  // zero-width window at the current position, never a backwards one.
  sampler.sample(5, "c");
  const Timeline& tl = sampler.timeline();
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].begin, 0);
  EXPECT_EQ(tl[0].end, 10);
  EXPECT_EQ(tl[0].stage, "a");
  EXPECT_EQ(tl[1].begin, 10);
  EXPECT_EQ(tl[1].end, 30);
  EXPECT_EQ(tl[2].begin, 30);
  EXPECT_EQ(tl[2].end, 30);
  EXPECT_EQ(tl[2].stage, "c");
}

// --- Sampler diffing -------------------------------------------------------

TEST(TimelineSampler, CounterDeltasSkipUnchangedSeries) {
  Registry registry;
  auto a = registry.counter("a_total");
  auto b = registry.counter("b_total");
  TimelineSampler sampler(registry, 10, 0);

  a.inc(5);
  sampler.sample(10, "s");
  a.inc(2);
  b.inc(1);
  sampler.sample(20, "s");
  sampler.sample(30, "s");  // nothing moved: no counters at all

  const Timeline& tl = sampler.timeline();
  ASSERT_EQ(tl.size(), 3u);
  ASSERT_EQ(tl[0].counters.size(), 1u);
  EXPECT_EQ(tl[0].counters[0].name, "a_total");
  EXPECT_EQ(tl[0].counters[0].delta, 5u);
  ASSERT_EQ(tl[1].counters.size(), 2u);  // snapshot order: a then b
  EXPECT_EQ(tl[1].counters[0].delta, 2u);
  EXPECT_EQ(tl[1].counters[1].name, "b_total");
  EXPECT_EQ(tl[1].counters[1].delta, 1u);
  EXPECT_TRUE(tl[2].counters.empty());
}

TEST(TimelineSampler, GaugesRecordedOnlyWhenBitPatternChanges) {
  Registry registry;
  auto g = registry.gauge("depth");
  TimelineSampler sampler(registry, 10, 0);

  g.set(1.5);
  sampler.sample(10, "s");
  sampler.sample(20, "s");  // unchanged: omitted
  g.set(-0.25);
  sampler.sample(30, "s");

  const Timeline& tl = sampler.timeline();
  ASSERT_EQ(tl.size(), 3u);
  ASSERT_EQ(tl[0].gauges.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(tl[0].gauges[0].value),
            std::bit_cast<std::uint64_t>(1.5));
  EXPECT_TRUE(tl[1].gauges.empty());
  ASSERT_EQ(tl[2].gauges.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(tl[2].gauges[0].value),
            std::bit_cast<std::uint64_t>(-0.25));
}

TEST(TimelineSampler, HistogramDeltasFoldIntoWindows) {
  Registry registry;
  auto h = registry.histogram("wall_us");
  TimelineSampler sampler(registry, 10, 0);
  h.observe(123.0);
  h.observe(2.0);
  sampler.sample(10, "s");
  h.observe(1.0);
  sampler.sample(20, "s");
  sampler.sample(30, "s");  // no movement: omitted like a zero counter delta

  const Timeline& tl = sampler.timeline();
  ASSERT_EQ(tl.size(), 3u);
  // Histograms ride in their own field, never the counter/gauge lists.
  EXPECT_TRUE(tl[0].counters.empty());
  EXPECT_TRUE(tl[0].gauges.empty());
  ASSERT_EQ(tl[0].histograms.size(), 1u);
  EXPECT_EQ(tl[0].histograms[0].name, "wall_us");
  EXPECT_EQ(tl[0].histograms[0].count_delta, 2u);
  EXPECT_EQ(tl[0].histograms[0].sum_delta, 125.0);
  ASSERT_EQ(tl[1].histograms.size(), 1u);
  EXPECT_EQ(tl[1].histograms[0].count_delta, 1u);
  EXPECT_EQ(tl[1].histograms[0].sum_delta, 1.0);
  EXPECT_TRUE(tl[2].histograms.empty());
}

TEST(TimelineSampler, VantageFamiliesSplitIntoSortedVantageSeries) {
  Registry registry;
  registry.counter(kVantagePollsFamily, "", {{"vantage", "3"}}).inc(7);
  registry.counter(kVantagePollsFamily, "", {{"vantage", "1"}}).inc(4);
  registry.counter(kVantageAnsweredFamily, "", {{"vantage", "1"}}).inc(3);
  registry.counter(kVantageFaultLostFamily, "", {{"vantage", "3"}}).inc(2);
  registry.counter(kVantageRecordsFamily, "", {{"vantage", "1"}}).inc(4);
  registry.counter("other_total").inc(1);

  TimelineSampler sampler(registry, 10, 0);
  sampler.sample(10, "collect");
  const Timeline& tl = sampler.timeline();
  ASSERT_EQ(tl.size(), 1u);
  // The vantage families never leak into the generic counter list.
  ASSERT_EQ(tl[0].counters.size(), 1u);
  EXPECT_EQ(tl[0].counters[0].name, "other_total");
  ASSERT_EQ(tl[0].vantages.size(), 2u);  // sorted by id
  EXPECT_EQ(tl[0].vantages[0].vantage, 1u);
  EXPECT_EQ(tl[0].vantages[0].polls, 4u);
  EXPECT_EQ(tl[0].vantages[0].answered, 3u);
  EXPECT_EQ(tl[0].vantages[0].records, 4u);
  EXPECT_EQ(tl[0].vantages[1].vantage, 3u);
  EXPECT_EQ(tl[0].vantages[1].polls, 7u);
  EXPECT_EQ(tl[0].vantages[1].fault_lost, 2u);
}

// --- Exposition ------------------------------------------------------------

Timeline tiny_timeline() {
  Timeline tl;
  WindowRecord w;
  w.begin = 0;
  w.end = 86400;
  w.stage = "collect";
  w.counters.push_back({"polls_total", {}, 12});
  w.counters.push_back({"records_total", {{"kind", "a\"b"}}, 3});
  w.gauges.push_back({"depth", {}, 1.5});
  w.histograms.push_back({"wall_us", {}, 3, 123.5});
  w.vantages.push_back({2, 10, 9, 1, 8});
  tl.push_back(std::move(w));
  WindowRecord v;
  v.begin = 86400;
  v.end = 86400;
  v.stage = "analysis";
  tl.push_back(std::move(v));
  return tl;
}

TEST(TimelineExposition, ParseFormatAndSuffix) {
  EXPECT_EQ(parse_timeline_format("jsonl"), TimelineFormat::kJsonl);
  EXPECT_EQ(parse_timeline_format("json"), TimelineFormat::kJsonl);
  EXPECT_EQ(parse_timeline_format("csv"), TimelineFormat::kCsv);
  EXPECT_FALSE(parse_timeline_format("yaml").has_value());
  EXPECT_EQ(timeline_format_suffix(TimelineFormat::kJsonl), "jsonl");
  EXPECT_EQ(timeline_format_suffix(TimelineFormat::kCsv), "csv");
}

TEST(TimelineExposition, JsonlGolden) {
  const std::string text =
      render_timeline(tiny_timeline(), TimelineFormat::kJsonl);
  EXPECT_EQ(
      text,
      "{\"begin\":0,\"end\":86400,\"stage\":\"collect\","
      "\"counters\":{\"polls_total\":12,\"records_total{kind=\\\"a\\\\\\\"b\\\""
      "}\":3},\"gauges\":{\"depth\":1.5},\"histograms\":{\"wall_us\":"
      "{\"count\":3,\"sum\":123.5}},\"vantages\":[{\"vantage\":2,"
      "\"polls\":10,\"answered\":9,\"fault_lost\":1,\"records\":8}]}\n"
      "{\"begin\":86400,\"end\":86400,\"stage\":\"analysis\",\"counters\":{},"
      "\"gauges\":{},\"histograms\":{},\"vantages\":[]}\n");
  EXPECT_FALSE(lint_timeline_jsonl(text).has_value());
}

TEST(TimelineExposition, CsvGolden) {
  const std::string text =
      render_timeline(tiny_timeline(), TimelineFormat::kCsv);
  EXPECT_EQ(text,
            "begin,end,stage,kind,series,value\n"
            "0,86400,collect,counter,polls_total,12\n"
            "0,86400,collect,counter,\"records_total{kind=\"\"a\\\"\"b\"\"}\""
            ",3\n"
            "0,86400,collect,gauge,depth,1.5\n"
            "0,86400,collect,histogram_count,wall_us,3\n"
            "0,86400,collect,histogram_sum,wall_us,123.5\n"
            "0,86400,collect,vantage_polls,2,10\n"
            "0,86400,collect,vantage_answered,2,9\n"
            "0,86400,collect,vantage_fault_lost,2,1\n"
            "0,86400,collect,vantage_records,2,8\n");
}

TEST(TimelineExposition, JsonLinter) {
  EXPECT_FALSE(lint_json("{\"a\":[1,2.5,-3e2,true,false,null,\"x\\n\"]}")
                   .has_value());
  EXPECT_TRUE(lint_json("{\"a\":1,}").has_value());       // trailing comma
  EXPECT_TRUE(lint_json("{\"a\":1} x").has_value());      // trailing garbage
  EXPECT_TRUE(lint_json("{\"a\":\"\\q\"}").has_value());  // bad escape
  EXPECT_TRUE(lint_json("{\"a\":01}").has_value());       // leading zero
  EXPECT_TRUE(lint_json("").has_value());
}

TEST(TimelineExposition, TimelineLinterRejectsMalformedSequences) {
  // Gap between windows.
  EXPECT_TRUE(
      lint_timeline_jsonl("{\"begin\":0,\"end\":5,\"stage\":\"a\"}\n"
                          "{\"begin\":6,\"end\":7,\"stage\":\"a\"}\n")
          .has_value());
  // begin > end.
  EXPECT_TRUE(lint_timeline_jsonl("{\"begin\":5,\"end\":0,\"stage\":\"a\"}\n")
                  .has_value());
  // Not an object.
  EXPECT_TRUE(lint_timeline_jsonl("[1,2]\n").has_value());
  // Missing stage.
  EXPECT_TRUE(lint_timeline_jsonl("{\"begin\":0,\"end\":5}\n").has_value());
  // Clean two-window sequence.
  EXPECT_FALSE(
      lint_timeline_jsonl("{\"begin\":0,\"end\":5,\"stage\":\"a\"}\n"
                          "{\"begin\":5,\"end\":5,\"stage\":\"b\"}\n")
          .has_value());
}

// --- Chrome trace export ---------------------------------------------------

TEST(TraceExport, GoldenSpansAndWindows) {
  Registry registry;
  Tracer& tracer = registry.tracer();
  const auto root = tracer.begin_span("study.run", 0);
  const auto inner = tracer.begin_span("study.collect", 0);
  tracer.end_span(inner, 100);
  tracer.end_span(root, 150);

  Timeline tl;
  WindowRecord w;
  w.begin = 0;
  w.end = 100;
  w.stage = "collect";
  w.vantages.push_back({0, 5, 4, 1, 3});
  tl.push_back(std::move(w));

  const std::string text = render_trace_events(registry.snapshot(), tl);
  EXPECT_EQ(text,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"study.run\",\"ph\":\"B\",\"ts\":0,\"pid\":1,"
            "\"tid\":1},\n"
            "{\"name\":\"study.collect\",\"ph\":\"B\",\"ts\":0,\"pid\":1,"
            "\"tid\":1},\n"
            "{\"name\":\"study.collect\",\"ph\":\"E\",\"ts\":100,\"pid\":1,"
            "\"tid\":1},\n"
            "{\"name\":\"study.run\",\"ph\":\"E\",\"ts\":150,\"pid\":1,"
            "\"tid\":1},\n"
            "{\"name\":\"collect\",\"ph\":\"X\",\"ts\":0,\"pid\":1,"
            "\"tid\":2,\"dur\":100},\n"
            "{\"name\":\"window_throughput\",\"ph\":\"C\",\"ts\":100,"
            "\"pid\":1,\"tid\":2,\"args\":{\"records\":3,\"answered\":4,"
            "\"fault_lost\":1}}\n"
            "]}\n");
  EXPECT_FALSE(lint_trace_events(text).has_value());
  EXPECT_FALSE(lint_json(text).has_value());
}

TEST(TraceExport, LinterRejectsUnbalancedAndBackwardsEvents) {
  // Unmatched B.
  EXPECT_TRUE(
      lint_trace_events(
          "{\"traceEvents\":[\n"
          "{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1}\n"
          "]}\n")
          .has_value());
  // ts runs backwards on one tid.
  EXPECT_TRUE(
      lint_trace_events(
          "{\"traceEvents\":[\n"
          "{\"name\":\"a\",\"ph\":\"B\",\"ts\":5,\"pid\":1,\"tid\":1},\n"
          "{\"name\":\"a\",\"ph\":\"E\",\"ts\":4,\"pid\":1,\"tid\":1}\n"
          "]}\n")
          .has_value());
  // E with no open B.
  EXPECT_TRUE(
      lint_trace_events(
          "{\"traceEvents\":[\n"
          "{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":1}\n"
          "]}\n")
          .has_value());
  // Invalid JSON overall.
  EXPECT_TRUE(lint_trace_events("{\"traceEvents\":[").has_value());
}

// --- Study-level determinism contract --------------------------------------

core::StudyConfig sampled_study(unsigned threads) {
  core::StudyConfig config;
  config.world.seed = 11;
  config.world.total_sites = 250;
  config.pool_capture_share = 1.0;
  config.world.study_duration = 21 * util::kDay;
  config.backscan_start = 24 * util::kDay;
  config.backscan_duration = 2 * util::kDay;
  config.hitlist_campaign.start = 2 * util::kDay;
  config.hitlist_campaign.duration = 2 * util::kWeek;
  config.caida_campaign.start = 2 * util::kDay;
  config.caida_campaign.duration = 7 * util::kDay;
  config.caida_campaign.slash48_fraction = 0.005;
  config.collector.threads = threads;
  config.analysis.threads = threads;
  // Active faults so the fault_lost vantage series is exercised.
  config.faults.outages_per_vantage = 2.0;
  config.faults.flaps_per_vantage = 4.0;
  return config;
}

core::StudyResults run_sampled(unsigned threads, util::SimDuration interval) {
  core::Study study(sampled_study(threads));
  core::RunOptions options;
  options.sample_interval = interval;
  study.run(std::move(options));
  return std::move(study.mutable_results());
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin) << "window " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "window " << i;
    EXPECT_EQ(a[i].stage, b[i].stage) << "window " << i;
    ASSERT_EQ(a[i].counters.size(), b[i].counters.size()) << "window " << i;
    for (std::size_t c = 0; c < a[i].counters.size(); ++c) {
      EXPECT_EQ(a[i].counters[c].name, b[i].counters[c].name);
      EXPECT_EQ(a[i].counters[c].labels, b[i].counters[c].labels);
      EXPECT_EQ(a[i].counters[c].delta, b[i].counters[c].delta)
          << "window " << i << " counter " << a[i].counters[c].name;
    }
    ASSERT_EQ(a[i].gauges.size(), b[i].gauges.size()) << "window " << i;
    for (std::size_t g = 0; g < a[i].gauges.size(); ++g) {
      EXPECT_EQ(a[i].gauges[g].name, b[i].gauges[g].name);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].gauges[g].value),
                std::bit_cast<std::uint64_t>(b[i].gauges[g].value));
    }
    ASSERT_EQ(a[i].vantages.size(), b[i].vantages.size()) << "window " << i;
    for (std::size_t v = 0; v < a[i].vantages.size(); ++v) {
      EXPECT_EQ(a[i].vantages[v].vantage, b[i].vantages[v].vantage);
      EXPECT_EQ(a[i].vantages[v].polls, b[i].vantages[v].polls);
      EXPECT_EQ(a[i].vantages[v].answered, b[i].vantages[v].answered);
      EXPECT_EQ(a[i].vantages[v].fault_lost, b[i].vantages[v].fault_lost);
      EXPECT_EQ(a[i].vantages[v].records, b[i].vantages[v].records);
    }
  }
}

std::string corpus_bytes(const hitlist::Corpus& corpus) {
  std::ostringstream out(std::ios::binary);
  hitlist::save_corpus(out, corpus);
  return std::move(out).str();
}

TEST(TimelineStudy, WindowDeltasTelescopeToCounterTotals) {
  const auto r = run_sampled(1, 7 * util::kDay);
  ASSERT_FALSE(r.timeline.empty());

  // Fold every window back together: generic counter deltas by series,
  // vantage series back into their four counter families.
  std::map<std::pair<std::string, Labels>, std::uint64_t> folded;
  for (const auto& w : r.timeline) {
    for (const auto& c : w.counters) folded[{c.name, c.labels}] += c.delta;
    for (const auto& v : w.vantages) {
      const Labels labels = {{"vantage", std::to_string(v.vantage)}};
      folded[{std::string(kVantagePollsFamily), labels}] += v.polls;
      folded[{std::string(kVantageAnsweredFamily), labels}] += v.answered;
      folded[{std::string(kVantageFaultLostFamily), labels}] += v.fault_lost;
      folded[{std::string(kVantageRecordsFamily), labels}] += v.records;
    }
  }

  // Every counter in the end-of-run snapshot equals its telescoped window
  // sum, and vice versa (no series exists only in the timeline).
  std::size_t counters_checked = 0;
  for (const auto& sample : r.metrics.samples) {
    if (sample.type != MetricType::kCounter) continue;
    ++counters_checked;
    const auto it = folded.find({sample.name, sample.labels});
    const std::uint64_t sum = it == folded.end() ? 0 : it->second;
    EXPECT_EQ(sum, sample.counter_value) << sample.name;
    if (it != folded.end()) folded.erase(it);
  }
  EXPECT_GT(counters_checked, 0u);
  EXPECT_TRUE(folded.empty());

  // The headline series moved: collection recorded real windows.
  EXPECT_GT(r.metrics.counter_sum("v6_collector_records_total"), 0u);
  bool fault_seen = false;
  for (const auto& w : r.timeline) {
    for (const auto& v : w.vantages) fault_seen |= v.fault_lost > 0;
  }
  EXPECT_TRUE(fault_seen);  // the fault plan is active in this config
}

// Histogram windows carry wall-clock count/sum movement (stage durations,
// serve latency) and are explicitly outside the bit-identity contract;
// drop them before byte-level comparisons of the rendered exports.
Timeline strip_histograms(Timeline tl) {
  for (auto& w : tl) w.histograms.clear();
  return tl;
}

TEST(TimelineStudy, BitIdenticalAcrossThreadCounts) {
  const auto r1 = run_sampled(1, 6 * util::kDay);
  const auto r2 = run_sampled(2, 6 * util::kDay);
  const auto r4 = run_sampled(4, 6 * util::kDay);
  ASSERT_FALSE(r1.timeline.empty());
  expect_same_timeline(r1.timeline, r2.timeline);
  expect_same_timeline(r1.timeline, r4.timeline);
  // The rendered exports are therefore byte-identical too, once the
  // wall-clock histogram fields are stripped.
  const Timeline t1 = strip_histograms(r1.timeline);
  const Timeline t4 = strip_histograms(r4.timeline);
  EXPECT_EQ(render_timeline(t1, TimelineFormat::kJsonl),
            render_timeline(t4, TimelineFormat::kJsonl));
  EXPECT_EQ(render_timeline(t1, TimelineFormat::kCsv),
            render_timeline(t4, TimelineFormat::kCsv));
}

TEST(TimelineStudy, SamplingLeavesResultsByteIdentical) {
  const auto off = run_sampled(2, 0);
  const auto on = run_sampled(2, 5 * util::kDay);
  EXPECT_TRUE(off.timeline.empty());
  ASSERT_FALSE(on.timeline.empty());

  // The corpora are byte-identical under the binary snapshot format...
  EXPECT_EQ(corpus_bytes(off.ntp), corpus_bytes(on.ntp));
  EXPECT_EQ(corpus_bytes(off.backscan_week), corpus_bytes(on.backscan_week));
  EXPECT_EQ(corpus_bytes(off.hitlist.corpus), corpus_bytes(on.hitlist.corpus));

  // ...and the floating-point analysis aggregates match to the bit.
  EXPECT_EQ(
      std::bit_cast<std::uint64_t>(off.analysis.address_lifetimes.fraction_once),
      std::bit_cast<std::uint64_t>(on.analysis.address_lifetimes.fraction_once));
  EXPECT_EQ(
      std::bit_cast<std::uint64_t>(off.analysis.address_lifetimes.fraction_month),
      std::bit_cast<std::uint64_t>(
          on.analysis.address_lifetimes.fraction_month));
  ASSERT_EQ(off.analysis.table1.size(), on.analysis.table1.size());
  for (std::size_t i = 0; i < off.analysis.table1.size(); ++i) {
    EXPECT_EQ(off.analysis.table1[i].addresses, on.analysis.table1[i].addresses);
    EXPECT_EQ(off.analysis.table1[i].asns, on.analysis.table1[i].asns);
    EXPECT_EQ(off.analysis.table1[i].slash48s, on.analysis.table1[i].slash48s);
  }

  // The timeline is gapless and lints clean end to end.
  EXPECT_FALSE(
      lint_timeline_jsonl(render_timeline(on.timeline, TimelineFormat::kJsonl))
          .has_value());
  EXPECT_FALSE(
      lint_trace_events(render_trace_events(on.metrics, on.timeline))
          .has_value());
}

}  // namespace
}  // namespace v6::obs
