// Ablation of the observation-model design choices DESIGN.md documents:
//
//   * pool capture share  — our 27 servers are a sliver of the pool's
//     rotation; without sampling, "observed once" collapses;
//   * iburst bursts       — multi-packet syncs through one DNS answer are
//     what give a large minority of addresses >1 sighting;
//   * client churn        — devices present for only weeks are what keeps
//     most EUI-64 MACs single-prefix ("mostly static" in §5.2).
//
// Each row re-runs collection on the same world with one mechanism
// removed and reports the statistics that mechanism is responsible for.
#include "analysis/eui64_tracking.h"
#include "analysis/lifetimes.h"
#include "bench_common.h"
#include "hitlist/passive_collector.h"
#include "netsim/pool_dns.h"

namespace {

using namespace v6;

struct RowResult {
  std::uint64_t corpus = 0;
  double once = 0.0;
  double eui64_multi_prefix = 0.0;
};

RowResult run_once(const sim::World& world, double capture,
                   bool ignore_bursts) {
  netsim::DataPlane plane(world, {0.01, 1});
  netsim::PoolDns dns(world, 0.25, capture);
  hitlist::CollectorConfig config;
  config.loss_rate = 0.01;
  config.ignore_bursts = ignore_bursts;
  hitlist::PassiveCollector collector(world, plane, dns, config);
  hitlist::Corpus corpus(1 << 16);
  collector.run(corpus, 0, world.config().study_duration);

  RowResult row;
  row.corpus = corpus.size();
  const auto lifetimes = analysis::address_lifetimes(corpus, {});
  row.once = lifetimes.fraction_once;
  analysis::Eui64Tracker tracker(corpus, world);
  row.eui64_multi_prefix =
      tracker.unique_macs() == 0
          ? 0.0
          : static_cast<double>(tracker.trackable_macs()) /
                static_cast<double>(tracker.unique_macs());
  return row;
}

}  // namespace

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  // The ablation grid re-collects several times; use a smaller world.
  config.world.total_sites =
      std::min<std::uint32_t>(config.world.total_sites, 6000);
  config.world.study_duration =
      std::min<util::SimDuration>(config.world.study_duration,
                                  120 * util::kDay);
  bench::print_banner("Ablation: observation-model design choices", config);

  util::TablePrinter table({"configuration", "unique addresses",
                            "observed once", "EUI-64 MACs in >=2 /64s"});
  auto add_row = [&table](const char* name, const RowResult& row) {
    table.add_row({name, util::with_commas(row.corpus),
                   util::percent(row.once),
                   util::percent(row.eui64_multi_prefix)});
  };

  {
    const auto world = sim::World::generate(config.world);
    bench::timed("baseline (capture 3%, bursts, churn)", [&] {
      add_row("baseline", run_once(world, 0.03, false));
    });
    bench::timed("full capture (every poll seen)", [&] {
      add_row("capture share = 100%", run_once(world, 1.0, false));
    });
    bench::timed("no bursts", [&] {
      add_row("iburst disabled", run_once(world, 0.03, true));
    });
  }
  {
    auto no_churn = config.world;
    no_churn.client_churn = false;
    const auto world = sim::World::generate(no_churn);
    bench::timed("no churn (devices never retire)", [&] {
      add_row("client churn disabled", run_once(world, 0.03, false));
    });
  }
  table.print(std::cout);

  std::printf(
      "\nreading guide: capture-share sampling carries the paper's >60%%\n"
      "observed-once statistic (full capture collapses it); iburst bursts\n"
      "hold it down near 60-70%% instead of ~90%%; and disabling churn both\n"
      "triples the corpus and visibly raises EUI-64 multi-prefix exposure.\n");
  return 0;
}
